package sqldb

import (
	"sort"
	"strings"
)

// This file implements the ordered half of the dual-structure Index
// (catalog.go) and the operators that exploit it. The hash map is the
// always-current source of truth; the ordered view — distinct values
// sorted by Value.Compare, each with its row ids in heap order — is
// derived from it lazily and then maintained incrementally by DML while
// it is live (ordInsert/ordMove below; deletes tombstone instead, and the
// consumers here skip dead ids via the table's bitmap). On top of it sit:
//
//	ordScanOp     streams a table in index order (optionally bounded),
//	              letting ORDER BY ... LIMIT k read exactly O(k) rows
//	              and range predicates skip the heap entirely
//	collectRangeIDs  materialises a range as heap-ordered row ids for
//	              plans that need scan order preserved (no ORDER BY)
//	mergeJoinOp   equi-joins two tables by walking both ordered views
//	              in lockstep, with no build phase and no hashing
//
// Order equivalence is exact, not approximate: within one entry the ids
// are ascending heap positions, so "walk entries in Compare order, ids
// within" yields precisely what a stable sort of the heap scan on that
// column yields. The planner relies on this to drop sortOp without
// changing any observable ordering, including ties.

// ordEntry is one distinct value of an ordered index view with the ids of
// the rows holding it, ascending.
type ordEntry struct {
	val Value
	ids []int
}

// Fault-injection switches for the metamorphic/property test layer: each
// deliberately breaks one incremental-maintenance invariant so the suites
// can prove they would catch such a bug (scans emitting deleted rows,
// ordered views going stale). Never set outside tests.
var (
	debugDisableTombstoneSkip bool // scans emit tombstoned rows
	debugBreakOrdMaintain     bool // DML leaves live ordered views stale
)

// orderedEntries returns the index's ordered view, building it from the
// hash map on first use after a compaction (the only wholesale
// invalidation left). Concurrent readers (queries share the database's
// read lock) serialise on ordMu. Entry id slices are copied at build:
// maintenance splices them in place, so they must never share backing
// arrays with the hash map's posting lists.
func (idx *Index) orderedEntries(t *Table) []ordEntry {
	idx.ordMu.Lock()
	defer idx.ordMu.Unlock()
	if idx.ord == nil {
		entries := make([]ordEntry, 0, len(idx.m))
		for _, ids := range idx.m {
			entries = append(entries, ordEntry{
				val: t.rows[ids[0]][idx.Column],
				ids: append([]int(nil), ids...),
			})
		}
		sort.Slice(entries, func(a, b int) bool {
			return entries[a].val.Compare(entries[b].val) < 0
		})
		idx.ord = entries
	}
	return idx.ord
}

// invalidateOrdered drops the ordered view; the next ordered access
// rebuilds it from the hash map.
func (idx *Index) invalidateOrdered() {
	idx.ordMu.Lock()
	idx.ord = nil
	idx.ordMu.Unlock()
}

// ordInsert splices a freshly inserted row into a live ordered view:
// binary search for the value's entry, then append the id (an insert
// always carries the largest id yet, so per-entry ascending order is
// preserved) or splice a new entry in at its sorted position. A nil view
// stays nil — the next ordered access builds it from the hash map for
// free. Reports whether a live view was maintained.
func (idx *Index) ordInsert(v Value, id int) bool {
	idx.ordMu.Lock()
	defer idx.ordMu.Unlock()
	if idx.ord == nil || debugBreakOrdMaintain {
		return false
	}
	entries := idx.ord
	pos := sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(v) >= 0 })
	if pos < len(entries) && entries[pos].val.Compare(v) == 0 {
		entries[pos].ids = append(entries[pos].ids, id)
		return true
	}
	idx.ord = spliceEntry(entries, pos, ordEntry{val: v, ids: []int{id}})
	return true
}

// spliceEntry inserts e into the entry slice at pos, preserving order.
func spliceEntry(entries []ordEntry, pos int, e ordEntry) []ordEntry {
	entries = append(entries, ordEntry{})
	copy(entries[pos+1:], entries[pos:])
	entries[pos] = e
	return entries
}

// ordMove serves an UPDATE that changed the indexed value: remove the id
// from the old value's entry and splice it into the new one at its
// ascending position (the id is unchanged — updated rows keep their heap
// slot). An entry left empty is spliced out immediately: a pure-UPDATE
// workload never deletes, so it never triggers compaction, and leaving
// the husks behind would grow the view by one dead entry per moved
// value forever. Reports whether a live view was maintained.
func (idx *Index) ordMove(oldV, newV Value, id int) bool {
	idx.ordMu.Lock()
	defer idx.ordMu.Unlock()
	if idx.ord == nil || debugBreakOrdMaintain {
		return false
	}
	entries := idx.ord
	pos := sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(oldV) >= 0 })
	if pos < len(entries) && entries[pos].val.Compare(oldV) == 0 {
		ids := entries[pos].ids
		if ip := sort.SearchInts(ids, id); ip < len(ids) && ids[ip] == id {
			ids = append(ids[:ip], ids[ip+1:]...)
			entries[pos].ids = ids
			if len(ids) == 0 {
				entries = append(entries[:pos], entries[pos+1:]...)
				idx.ord = entries
			}
		}
	}
	pos = sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(newV) >= 0 })
	if pos < len(entries) && entries[pos].val.Compare(newV) == 0 {
		entries[pos].ids = spliceID(entries[pos].ids, id)
		return true
	}
	idx.ord = spliceEntry(entries, pos, ordEntry{val: newV, ids: []int{id}})
	return true
}

// rangeBound is one end of a key range: the bounding value and whether
// the bound itself is included.
type rangeBound struct {
	val  Value
	incl bool
}

// rangeSpec is a one-column key range extracted from WHERE conjuncts
// (col > x, col <= y, BETWEEN). The zero value means "unbounded".
type rangeSpec struct {
	lo, hi *rangeBound
}

func (s rangeSpec) bounded() bool { return s.lo != nil || s.hi != nil }

// describe renders the range as SQL-ish text for EXPLAIN.
func (s rangeSpec) describe(col string) string {
	var parts []string
	if s.lo != nil {
		op := ">"
		if s.lo.incl {
			op = ">="
		}
		parts = append(parts, col+" "+op+" "+s.lo.val.String())
	}
	if s.hi != nil {
		op := "<"
		if s.hi.incl {
			op = "<="
		}
		parts = append(parts, col+" "+op+" "+s.hi.val.String())
	}
	if parts == nil {
		return col + " unbounded"
	}
	return strings.Join(parts, " AND ")
}

// tightenLo returns the stricter of two lower bounds (nil = unbounded).
// On equal values the exclusive bound is tighter.
func tightenLo(cur, nb *rangeBound) *rangeBound {
	if cur == nil {
		return nb
	}
	if nb == nil {
		return cur
	}
	c := nb.val.Compare(cur.val)
	if c > 0 || (c == 0 && !nb.incl) {
		return nb
	}
	return cur
}

// tightenHi returns the stricter of two upper bounds.
func tightenHi(cur, nb *rangeBound) *rangeBound {
	if cur == nil {
		return nb
	}
	if nb == nil {
		return cur
	}
	c := nb.val.Compare(cur.val)
	if c < 0 || (c == 0 && !nb.incl) {
		return nb
	}
	return cur
}

// rangeStart returns the first entry index inside the lower bound. With
// no lower bound NULL entries are still skipped: SQL range predicates
// are never true of NULL, and NULLs sort first under Compare.
func rangeStart(entries []ordEntry, lo *rangeBound) int {
	if lo == nil {
		return sort.Search(len(entries), func(i int) bool { return !entries[i].val.IsNull() })
	}
	if lo.incl {
		return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(lo.val) >= 0 })
	}
	return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(lo.val) > 0 })
}

// rangeEnd returns one past the last entry index inside the upper bound.
func rangeEnd(entries []ordEntry, hi *rangeBound) int {
	if hi == nil {
		return len(entries)
	}
	if hi.incl {
		return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(hi.val) > 0 })
	}
	return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(hi.val) >= 0 })
}

// collectRangeIDs gathers the live row ids inside the range in ascending
// heap order, so an unordered range scan emits rows exactly as a filtered
// full scan would (the property plan-equivalence tests rely on this
// under LIMIT truncation). Tombstoned ids are skipped and counted in the
// second return. Always returns a non-nil slice.
func collectRangeIDs(t *Table, entries []ordEntry, spec rangeSpec) ([]int, uint64) {
	lo, hi := rangeStart(entries, spec.lo), rangeEnd(entries, spec.hi)
	ids := make([]int, 0, 16)
	var skipped uint64
	for i := lo; i < hi; i++ {
		for _, id := range entries[i].ids {
			if t.isDead(id) && !debugDisableTombstoneSkip {
				skipped++
				continue
			}
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, skipped
}

// liveIDs filters a view entry's id list down to live rows, returning
// the input slice untouched when nothing is tombstoned (the common case)
// and the number of dead ids stepped over.
func liveIDs(t *Table, ids []int) ([]int, uint64) {
	if t.nDead == 0 || debugDisableTombstoneSkip {
		return ids, 0
	}
	first := -1
	for i, id := range ids {
		if t.isDead(id) {
			first = i
			break
		}
	}
	if first < 0 {
		return ids, 0
	}
	live := append([]int(nil), ids[:first]...)
	var skipped uint64
	for _, id := range ids[first:] {
		if t.isDead(id) {
			skipped++
			continue
		}
		live = append(live, id)
	}
	return live, skipped
}

// ---------------------------------------------------------------------------
// Ordered index scan

// ordScanOp streams a base table in the order of one of its indexes,
// optionally restricted to a key range. Because entries stream lazily in
// Compare order with heap-ordered ids inside each entry, the output is
// bit-identical to "heap scan, then stable sort on the column" — which is
// what lets the planner drop sortOp and makes ORDER BY col LIMIT k read
// exactly k rows. With bounds it is also the range access path for
// ordered queries. NULLs participate in a pure ordered scan (they sort
// first ascending, last descending, exactly as sortOp places them) but
// are excluded by any range.
type ordScanOp struct {
	table *Table
	idx   *Index
	qual  string
	cols  []colInfo
	spec  rangeSpec
	desc  bool
	qc    *queryCtx

	built       bool
	entries     []ordEntry
	lo, hi      int // [lo, hi) window of entries inside the range
	epos        int // current entry
	ipos        int // current position within the entry's ids
	counted     bool
	scanned     uint64 // rows this scan read (per-operator EXPLAIN ANALYZE)
	tombSkipped uint64 // tombstoned ids stepped over (EXPLAIN ANALYZE)
}

func (s *ordScanOp) columns() []colInfo { return s.cols }

func (s *ordScanOp) reset() { s.built = false }

func (s *ordScanOp) next() (Row, bool, error) {
	if !s.built {
		s.entries = s.idx.orderedEntries(s.table)
		if s.spec.bounded() {
			s.lo, s.hi = rangeStart(s.entries, s.spec.lo), rangeEnd(s.entries, s.spec.hi)
			if s.hi < s.lo {
				s.hi = s.lo
			}
		} else {
			s.lo, s.hi = 0, len(s.entries)
		}
		if s.desc {
			s.epos = s.hi - 1
		} else {
			s.epos = s.lo
		}
		s.ipos = 0
		s.built = true
		if s.qc != nil && !s.counted {
			s.counted = true
			s.qc.orderedOrders++
			if s.spec.bounded() {
				s.qc.indexRangeScans++
			} else {
				s.qc.indexScans++
			}
		}
	}
	if s.qc != nil {
		if err := s.qc.tickCancelled(); err != nil {
			return nil, false, err
		}
	}
	for {
		if s.desc {
			if s.epos < s.lo {
				return nil, false, nil
			}
		} else if s.epos >= s.hi {
			return nil, false, nil
		}
		e := s.entries[s.epos]
		for s.ipos < len(e.ids) {
			id := e.ids[s.ipos]
			s.ipos++
			if s.table.isDead(id) && !debugDisableTombstoneSkip {
				s.tombSkipped++
				if s.qc != nil {
					s.qc.tombstonesSkipped++
				}
				continue
			}
			r := s.table.rows[id]
			if s.qc != nil {
				s.qc.rowsScanned++
				s.scanned++
			}
			return r, true, nil
		}
		s.ipos = 0
		if s.desc {
			s.epos--
		} else {
			s.epos++
		}
	}
}

// ---------------------------------------------------------------------------
// Sort-merge join

// mergeJoinOp equi-joins two base tables by walking both join columns'
// ordered index views in lockstep: no build phase, no hashing, O(left +
// right + output). Each ordered view has one entry per distinct value, so
// a key match is a single cross product of the two entries' id lists
// (left-major, heap order inside). Output therefore arrives in join-key
// order — the planner only picks this operator when a top-level ORDER BY
// re-sorts the untruncated result, the same safety condition as flipping
// hash-join build sides. NULL keys never join and their entries are
// skipped via the range helpers.
type mergeJoinOp struct {
	leftTable, rightTable *Table
	leftIdx, rightIdx     *Index
	cols                  []colInfo
	leftKeyE, rightKeyE   Expr // retained for EXPLAIN
	residualE             Expr // retained for EXPLAIN
	residual              compiledExpr
	pairEnv               *evalEnv
	arena                 rowArena
	qc                    *queryCtx

	built       bool
	counted     bool
	scanned     uint64 // rows read off both ordered views (EXPLAIN ANALYZE)
	tombSkipped uint64 // tombstoned ids stepped over (EXPLAIN ANALYZE)
	le, re      []ordEntry
	li, ri      int
	// current match block: the two id lists of an equal key
	lids, rids []int
	lp, rp     int
	inBlock    bool
}

func newMergeJoinOp(lt, rt *Table, lidx, ridx *Index, leftCols, rightCols []colInfo,
	leftKeyE, rightKeyE, residual Expr,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*mergeJoinOp, error) {

	cols := append(append([]colInfo{}, leftCols...), rightCols...)
	m := &mergeJoinOp{
		leftTable: lt, rightTable: rt, leftIdx: lidx, rightIdx: ridx,
		cols: cols, leftKeyE: leftKeyE, rightKeyE: rightKeyE, residualE: residual,
		qc: qc,
	}
	m.pairEnv = newEvalEnv(cols, db, params, outer, qc)
	if residual != nil {
		var err error
		if m.residual, err = compileExpr(residual, m.pairEnv); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *mergeJoinOp) columns() []colInfo { return m.cols }

func (m *mergeJoinOp) reset() {
	m.built = false
	m.inBlock = false
}

func (m *mergeJoinOp) next() (Row, bool, error) {
	if !m.built {
		m.le = m.leftIdx.orderedEntries(m.leftTable)
		m.re = m.rightIdx.orderedEntries(m.rightTable)
		// Skip NULL entries: NULL keys never join.
		m.li = rangeStart(m.le, nil)
		m.ri = rangeStart(m.re, nil)
		m.inBlock = false
		m.built = true
		if m.qc != nil && !m.counted {
			m.counted = true
			m.qc.indexScans += 2
		}
	}
	if m.qc != nil {
		if err := m.qc.tickCancelled(); err != nil {
			return nil, false, err
		}
	}
	for {
		if m.inBlock {
			for m.lp < len(m.lids) {
				lrow := m.leftTable.rows[m.lids[m.lp]]
				if m.rp < len(m.rids) {
					rrow := m.rightTable.rows[m.rids[m.rp]]
					m.rp++
					out := m.arena.alloc(len(m.cols))
					n := copy(out, lrow)
					copy(out[n:], rrow)
					if m.residual != nil {
						m.pairEnv.row = out
						v, err := m.residual()
						if err != nil {
							return nil, false, err
						}
						if v.IsNull() || !v.AsBool() {
							continue
						}
					}
					return out, true, nil
				}
				m.rp = 0
				m.lp++
			}
			m.inBlock = false
			m.li++
			m.ri++
		}
		if m.li >= len(m.le) || m.ri >= len(m.re) {
			return nil, false, nil
		}
		c := m.le[m.li].val.Compare(m.re[m.ri].val)
		switch {
		case c < 0:
			m.li++
		case c > 0:
			m.ri++
		default:
			var lskip, rskip uint64
			m.lids, lskip = liveIDs(m.leftTable, m.le[m.li].ids)
			m.rids, rskip = liveIDs(m.rightTable, m.re[m.ri].ids)
			m.lp, m.rp = 0, 0
			m.inBlock = true
			m.tombSkipped += lskip + rskip
			if m.qc != nil {
				m.qc.tombstonesSkipped += lskip + rskip
				m.qc.rowsScanned += uint64(len(m.lids) + len(m.rids))
				m.scanned += uint64(len(m.lids) + len(m.rids))
			}
		}
	}
}
