package sqldb

import "testing"

// Benchmarks for early-terminating query shapes — the workloads the
// streaming executor redesign targets. They intentionally use only the
// materialising Query API so the same file runs against the pre-streaming
// engine for before/after comparison (BENCH_2.json); the streaming-cursor
// benchmarks live in stream_bench_test.go.

// BenchmarkLimitQuery: without ORDER BY the plan stops at the window.
func BenchmarkLimitQuery(b *testing.B) {
	db := benchDB(b, 50000)
	benchQuery(b, db, "SELECT name FROM items WHERE qty < 25 LIMIT 5")
}

// BenchmarkDistinctLimit: DISTINCT used to materialise and deduplicate
// the whole result before the window was applied; streaming dedup stops
// at the third distinct value.
func BenchmarkDistinctLimit(b *testing.B) {
	db := benchDB(b, 50000)
	benchQuery(b, db, "SELECT DISTINCT cat_id FROM items LIMIT 3")
}

// BenchmarkExistsProbe: a correlated EXISTS used to materialise its whole
// subquery result per outer row; the streaming subplan stops at the first
// match.
func BenchmarkExistsProbe(b *testing.B) {
	db := benchDB(b, 2000)
	benchQuery(b, db,
		"SELECT label FROM cats WHERE EXISTS (SELECT 1 FROM items WHERE items.cat_id = cats.id)")
}
