package sqldb

import (
	"context"
	"sync/atomic"
	"time"
)

// This file implements the database's observability surface. Every
// statement execution carries a queryCtx — the per-execution bundle of
// context.Context (cancellation) and locally accumulated counters — and
// folds its counters into the database-wide atomics exactly once when it
// finishes. Database.Stats() is therefore an aggregation of per-query
// recorders, not a set of ad-hoc global increments: concurrent cursors
// each accumulate privately and publish atomically at Close, so no query's
// work is ever attributed to another. The per-query slice is visible on
// its own as a QueryStats (Rows.Stats, ExplainAnalyze); Database.Stats()
// snapshots the aggregate, giving operators of a busy instance the numbers
// that matter under heavy traffic: how many queries ran, how often the
// plan cache hit, how much data scans actually touched, and whether
// cursors are being leaked.

// Stats is a point-in-time snapshot of a database's counters.
type Stats struct {
	// Queries counts top-level SELECT executions (Query, QueryRows,
	// prepared statements, and SELECTs routed through Exec).
	Queries uint64
	// Execs counts non-SELECT statements executed (DDL and DML).
	Execs uint64
	// PlanCacheHits / PlanCacheMisses count lookups in the LRU plan cache.
	PlanCacheHits   uint64
	PlanCacheMisses uint64
	// RowsScanned counts base-table rows read by scans (heap or index).
	// A `SELECT ... LIMIT k` without ORDER BY stops after O(k) scanned
	// rows — this counter is the observable proof.
	RowsScanned uint64
	// RowsEmitted counts rows delivered to callers.
	RowsEmitted uint64
	// IndexScans / FullScans count base-table access paths by kind.
	// IndexScans includes ordered (sort-eliding) index scans and both
	// sides of a merge join; IndexRangeScans counts access paths served
	// from an index's ordered view by a range predicate (col > x,
	// BETWEEN) instead of a heap scan.
	IndexScans      uint64
	FullScans       uint64
	IndexRangeScans uint64
	// OrderedIndexOrders counts ORDER BY clauses served from index order:
	// the planner dropped the sort and streamed rows through the index's
	// ordered view, which is what lets ORDER BY ... LIMIT k read O(k) rows.
	OrderedIndexOrders uint64
	// SubplanCacheHits / SubplanCacheMisses count correlated-subquery
	// evaluations (EXISTS, IN, scalar) served by re-pulling a subplan
	// compiled once per statement vs. (re)built per evaluation.
	SubplanCacheHits   uint64
	SubplanCacheMisses uint64
	// OrdMaintains counts incremental ordered-view maintenance operations:
	// an INSERT splicing its row into a live ordered view, or an UPDATE
	// moving one between entries. Under a write-heavy workload this is the
	// number of O(n log n) rebuilds that did not happen.
	OrdMaintains uint64
	// TombstonesSkipped counts row slots a scan stepped over because no
	// version was visible to its snapshot (deleted or not-yet-committed
	// rows awaiting vacuum). A high rate relative to RowsScanned means
	// vacuum lag.
	TombstonesSkipped uint64
	// Begins / Commits / Rollbacks count explicit transactions (SQL
	// BEGIN/COMMIT/ROLLBACK or Database.Begin); autocommit statements are
	// not counted here.
	Begins    uint64
	Commits   uint64
	Rollbacks uint64
	// ActiveTxns is the number of explicit transactions currently open.
	ActiveTxns int64
	// VacuumRuns counts vacuum passes (background or explicit);
	// VersionsReclaimed counts row versions they removed once invisible
	// to every live snapshot.
	VacuumRuns        uint64
	VersionsReclaimed uint64
	// OpenCursors is the number of Rows cursors not yet closed. A steadily
	// growing value means a caller is leaking cursors (and pinning the
	// vacuum horizon with its snapshot).
	OpenCursors int64
	// WALAppends / WALBytes count commit-time write-ahead-log appends
	// (one per committed autocommit statement, transaction frame, or
	// standalone DDL record) and the bytes they wrote. Zero on an
	// in-memory database.
	WALAppends uint64
	WALBytes   uint64
	// Checkpoints counts completed checkpoints (explicit or automatic):
	// snapshot written, log truncated to a fresh generation.
	Checkpoints uint64
	// RecoveredTxns counts the committed units recovery replayed from
	// the WAL when the database was opened.
	RecoveredTxns uint64
	// TornTailsDropped counts WAL files whose tail was incomplete at
	// recovery (a crash mid-append) and was silently dropped back to the
	// last fully-committed record.
	TornTailsDropped uint64
	// WALGroupCommits counts commits whose durability rode another
	// commit's fsync (group commit): the committer found its log record
	// already synced, or waited on a sync another commit was leading,
	// instead of issuing its own fsync.
	WALGroupCommits uint64
	// SegmentsSealed counts compressed column segments the background
	// sealer (or an explicit Seal) froze off cold regions of row heaps.
	SegmentsSealed uint64
	// SegmentScans counts scans that read at least one sealed segment;
	// DecodedBlocks counts the column blocks they decompressed.
	SegmentScans  uint64
	DecodedBlocks uint64
	// VectorBatches counts column batches the vectorized executor
	// produced; RowFallbacks counts SELECT plans that wanted the
	// vectorized path but fell back to the row-at-a-time tree because of
	// an unsupported shape (subqueries, UDFs, non-specializable
	// expressions).
	VectorBatches uint64
	RowFallbacks  uint64
}

// dbStats is the database-wide aggregate, updated with atomics.
type dbStats struct {
	queries         atomic.Uint64
	execs           atomic.Uint64
	rowsScanned     atomic.Uint64
	rowsEmitted     atomic.Uint64
	indexScans      atomic.Uint64
	fullScans       atomic.Uint64
	indexRangeScans atomic.Uint64
	orderedOrders   atomic.Uint64
	subplanHits     atomic.Uint64
	subplanMisses   atomic.Uint64
	ordMaintains    atomic.Uint64
	tombSkipped     atomic.Uint64
	openCursors     atomic.Int64

	begins            atomic.Uint64
	commits           atomic.Uint64
	rollbacks         atomic.Uint64
	activeTxns        atomic.Int64
	vacuumRuns        atomic.Uint64
	versionsReclaimed atomic.Uint64

	walAppends      atomic.Uint64
	walBytes        atomic.Uint64
	checkpoints     atomic.Uint64
	recoveredTxns   atomic.Uint64
	tornDropped     atomic.Uint64
	walGroupCommits atomic.Uint64

	segmentsSealed atomic.Uint64
	segmentScans   atomic.Uint64
	decodedBlocks  atomic.Uint64
	vectorBatches  atomic.Uint64
	rowFallbacks   atomic.Uint64
}

// Stats returns a snapshot of the database's counters.
func (db *Database) Stats() Stats {
	hits, misses := db.plans.counters()
	return Stats{
		Queries:            db.stats.queries.Load(),
		Execs:              db.stats.execs.Load(),
		PlanCacheHits:      hits,
		PlanCacheMisses:    misses,
		RowsScanned:        db.stats.rowsScanned.Load(),
		RowsEmitted:        db.stats.rowsEmitted.Load(),
		IndexScans:         db.stats.indexScans.Load(),
		FullScans:          db.stats.fullScans.Load(),
		IndexRangeScans:    db.stats.indexRangeScans.Load(),
		OrderedIndexOrders: db.stats.orderedOrders.Load(),
		SubplanCacheHits:   db.stats.subplanHits.Load(),
		SubplanCacheMisses: db.stats.subplanMisses.Load(),
		OrdMaintains:       db.stats.ordMaintains.Load(),
		TombstonesSkipped:  db.stats.tombSkipped.Load(),
		Begins:             db.stats.begins.Load(),
		Commits:            db.stats.commits.Load(),
		Rollbacks:          db.stats.rollbacks.Load(),
		ActiveTxns:         db.stats.activeTxns.Load(),
		VacuumRuns:         db.stats.vacuumRuns.Load(),
		VersionsReclaimed:  db.stats.versionsReclaimed.Load(),
		OpenCursors:        db.stats.openCursors.Load(),
		WALAppends:         db.stats.walAppends.Load(),
		WALBytes:           db.stats.walBytes.Load(),
		Checkpoints:        db.stats.checkpoints.Load(),
		RecoveredTxns:      db.stats.recoveredTxns.Load(),
		TornTailsDropped:   db.stats.tornDropped.Load(),
		WALGroupCommits:    db.stats.walGroupCommits.Load(),
		SegmentsSealed:     db.stats.segmentsSealed.Load(),
		SegmentScans:       db.stats.segmentScans.Load(),
		DecodedBlocks:      db.stats.decodedBlocks.Load(),
		VectorBatches:      db.stats.vectorBatches.Load(),
		RowFallbacks:       db.stats.rowFallbacks.Load(),
	}
}

// QueryStats is one statement execution's slice of Stats: what a single
// query did, measured by its own recorder rather than read back out of the
// engine-wide aggregate. Available mid-flight and after completion from
// Rows.Stats, and from ExplainAnalyze. Field meanings match Stats.
type QueryStats struct {
	RowsScanned        uint64
	RowsEmitted        uint64
	IndexScans         uint64
	FullScans          uint64
	IndexRangeScans    uint64
	OrderedIndexOrders uint64
	SubplanCacheHits   uint64
	SubplanCacheMisses uint64
	OrdMaintains       uint64
	TombstonesSkipped  uint64
	// SegmentScans / DecodedBlocks / VectorBatches / RowFallbacks measure
	// this execution's use of the vectorized engine and its compressed
	// column segments; meanings match Stats.
	SegmentScans  uint64
	DecodedBlocks uint64
	VectorBatches uint64
	RowFallbacks  uint64
	// VersionsReclaimed counts row versions a synchronous Vacuum pass
	// initiated by this execution removed (zero for ordinary statements —
	// reclamation is a background concern).
	VersionsReclaimed uint64
	// Elapsed is the wall time since execution began (planning included);
	// after the execution finishes it stops advancing.
	Elapsed time.Duration
}

// queryCtx carries one statement execution's cancellation context and its
// locally accumulated counters. An execution runs on a single goroutine,
// so the counters are plain integers; flush folds them into the
// database's atomics once, when the execution finishes (Rows.Close, or
// the end of Query/Exec). A nil queryCtx is valid everywhere and means
// "no context, no accounting" (EXPLAIN, internal helpers, tests).
type queryCtx struct {
	ctx context.Context
	db  *Database

	queries           uint64
	execs             uint64
	rowsScanned       uint64
	rowsEmitted       uint64
	indexScans        uint64
	fullScans         uint64
	indexRangeScans   uint64
	orderedOrders     uint64
	subplanHits       uint64
	subplanMisses     uint64
	ordMaintains      uint64
	tombstonesSkipped uint64
	versionsReclaimed uint64
	segmentScans      uint64
	decodedBlocks     uint64
	vectorBatches     uint64
	rowFallbacks      uint64

	// snap is the snapshot the statement evaluates visibility against:
	// a registered read snapshot (SELECT) or an unregistered statement
	// snapshot (DML, protected by writeMu instead). nil for contexts
	// without one (plain EXPLAIN), where scans fall back to
	// latest-committed.
	snap *snapshot
	// wtx is the transaction a DML statement writes under (set between
	// beginWrite and its end callback).
	wtx *Txn
	// releaseSnap, when set, drops the execution's snapshot reference at
	// flush — the cursor path, where the snapshot must live exactly as
	// long as iteration can still happen.
	releaseSnap func()

	start   time.Time
	elapsed time.Duration // fixed at flush

	// rec collects per-operator statistics; non-nil only under
	// ExplainAnalyze so ordinary executions skip all per-operator work.
	rec *execRecorder

	// finalizers stop any worker pools a streaming parallel operator
	// spawned for this execution (parallel.go). They must run — on the
	// owner goroutine — before the statement's read lock is released,
	// because workers read table data under that lock.
	finalizers []func()

	tick    uint
	flushed bool
}

// addFinalizer registers a cleanup to run at stopWorkers. Owner goroutine
// only.
func (qc *queryCtx) addFinalizer(f func()) {
	qc.finalizers = append(qc.finalizers, f)
}

// stopWorkers runs (and clears) the registered pool finalizers: every
// worker goroutine is stopped and joined before this returns. Idempotent;
// safe on a nil receiver. Must be called before releasing the read lock
// the execution holds.
func (qc *queryCtx) stopWorkers() {
	if qc == nil || len(qc.finalizers) == 0 {
		return
	}
	fins := qc.finalizers
	qc.finalizers = nil
	for _, f := range fins {
		f()
	}
}

func newQueryCtx(ctx context.Context, db *Database) *queryCtx {
	return &queryCtx{ctx: ctx, db: db, start: time.Now()}
}

// snapshot returns the execution's counters as a QueryStats. Safe on a nil
// receiver (zero stats).
func (qc *queryCtx) snapshot() QueryStats {
	if qc == nil {
		return QueryStats{}
	}
	elapsed := qc.elapsed
	if !qc.flushed {
		elapsed = time.Since(qc.start)
	}
	return QueryStats{
		RowsScanned:        qc.rowsScanned,
		RowsEmitted:        qc.rowsEmitted,
		IndexScans:         qc.indexScans,
		FullScans:          qc.fullScans,
		IndexRangeScans:    qc.indexRangeScans,
		OrderedIndexOrders: qc.orderedOrders,
		SubplanCacheHits:   qc.subplanHits,
		SubplanCacheMisses: qc.subplanMisses,
		OrdMaintains:       qc.ordMaintains,
		TombstonesSkipped:  qc.tombstonesSkipped,
		SegmentScans:       qc.segmentScans,
		DecodedBlocks:      qc.decodedBlocks,
		VectorBatches:      qc.vectorBatches,
		RowFallbacks:       qc.rowFallbacks,
		VersionsReclaimed:  qc.versionsReclaimed,
		Elapsed:            elapsed,
	}
}

// cancelled reports a typed ErrCanceled when the execution's context is
// done. The context's own error is the wrapped cause, so
// errors.Is(err, context.Canceled) keeps working.
func (qc *queryCtx) cancelled() error {
	if qc == nil || qc.ctx == nil {
		return nil
	}
	if err := qc.ctx.Err(); err != nil {
		return &Error{Code: ErrCanceled, Msg: "sql: query canceled: " + err.Error(), Cause: err}
	}
	return nil
}

// tickCancelled is cancelled sampled every 64th call, cheap enough for
// per-row paths (scans, DML loops).
func (qc *queryCtx) tickCancelled() error {
	if qc == nil || qc.ctx == nil {
		return nil
	}
	if qc.tick++; qc.tick&63 != 0 {
		return nil
	}
	return qc.cancelled()
}

// flush folds the local counters into the database aggregate and releases
// the execution's snapshot reference, if it still holds one. Idempotent —
// abandoned-cursor and mid-loop-error paths may reach it more than once,
// and the snapshot must be released exactly once so the vacuum horizon
// can advance.
func (qc *queryCtx) flush() {
	if qc == nil || qc.flushed || qc.db == nil {
		return
	}
	qc.flushed = true
	if qc.releaseSnap != nil {
		qc.releaseSnap()
		qc.releaseSnap = nil
		qc.snap = nil
	}
	qc.elapsed = time.Since(qc.start)
	s := &qc.db.stats
	if qc.queries > 0 {
		s.queries.Add(qc.queries)
	}
	if qc.execs > 0 {
		s.execs.Add(qc.execs)
	}
	if qc.rowsScanned > 0 {
		s.rowsScanned.Add(qc.rowsScanned)
	}
	if qc.rowsEmitted > 0 {
		s.rowsEmitted.Add(qc.rowsEmitted)
	}
	if qc.indexScans > 0 {
		s.indexScans.Add(qc.indexScans)
	}
	if qc.fullScans > 0 {
		s.fullScans.Add(qc.fullScans)
	}
	if qc.indexRangeScans > 0 {
		s.indexRangeScans.Add(qc.indexRangeScans)
	}
	if qc.orderedOrders > 0 {
		s.orderedOrders.Add(qc.orderedOrders)
	}
	if qc.subplanHits > 0 {
		s.subplanHits.Add(qc.subplanHits)
	}
	if qc.subplanMisses > 0 {
		s.subplanMisses.Add(qc.subplanMisses)
	}
	if qc.ordMaintains > 0 {
		s.ordMaintains.Add(qc.ordMaintains)
	}
	if qc.tombstonesSkipped > 0 {
		s.tombSkipped.Add(qc.tombstonesSkipped)
	}
	if qc.segmentScans > 0 {
		s.segmentScans.Add(qc.segmentScans)
	}
	if qc.decodedBlocks > 0 {
		s.decodedBlocks.Add(qc.decodedBlocks)
	}
	if qc.vectorBatches > 0 {
		s.vectorBatches.Add(qc.vectorBatches)
	}
	if qc.rowFallbacks > 0 {
		s.rowFallbacks.Add(qc.rowFallbacks)
	}
}
