package sqldb

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the durability layer's write side: a checksummed,
// length-prefixed write-ahead log appended at COMMIT, plus checkpointing
// that snapshots committed state and retires the log. Recovery (the read
// side) lives in recovery.go; the filesystem seam in walfs.go.
//
// Log format. A WAL file is a magic header followed by records:
//
//	record  = u32 payload-length | u32 CRC32(payload) | payload
//	payload = kind byte + kind-specific body
//
// Record kinds:
//
//	'S'  one DDL statement, stored as SQL text, self-committed
//	'T'  one autocommit statement's ops as a single record
//	'B'  begin frame of an explicit transaction (sequence number)
//	'O'  one logical op inside a frame
//	'C'  commit frame: the ops since 'B' are atomic
//
// Ops are logical row images, not slot ids: INSERT carries the new row,
// DELETE the deleted row's image, UPDATE both images. Recovery matches
// images against the lowest visible row, which reproduces the original
// slot assignment because DML always visits matching rows in ascending
// id order (dmlWhereIDs and the heap walk both yield ascending ids) and
// checkpoint compaction preserves the relative order of live rows. Image
// ops survive checkpointing, where slot ids would not: reloading a
// snapshot compacts slots.
//
// Write path invariants:
//
//   - Appends happen at commit, under the database's single-writer latch
//     and before the transaction's publication point (tm.finish), so log
//     order equals commit order and a transaction is never visible to new
//     snapshots without its frame being in the log (modulo fsync policy).
//   - A failed append or fsync POISONS the writer: the tail is truncated
//     back to the last record boundary (best effort), the commit returns
//     a typed ErrIO, and every later commit fails fast with ErrIO. The
//     in-memory database stays consistent and queryable; the durable
//     prefix is exactly the transactions committed before the first
//     error. Reopen recovers that prefix.
//
// Checkpoint protocol (generation g -> g+1), all under writeMu:
//
//	write snap-(g+1).sql.tmp, fsync     — full Dump of committed state
//	create wal-(g+1).log + magic, fsync — fresh empty log
//	rename snap-(g+1).sql.tmp -> snap-(g+1).sql   <- commit point
//	switch the writer to wal-(g+1), remove older generations
//
// Recovery picks the highest complete snapshot generation s, loads it,
// then replays every wal generation >= s in ascending order; a crash at
// any point of the protocol therefore recovers exactly the pre- or
// post-checkpoint state, never a mix (older generations are only removed
// after the rename commits the new one).

// walMagic identifies a WAL file and its format version.
var walMagic = []byte("TAGWAL1\n")

// walMaxRecord bounds a record's payload length; longer lengths in a
// header mean corruption (or a torn length field), not a real record.
const walMaxRecord = 1 << 30

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every commit append: a committed
	// transaction is durable when Commit returns.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker: a crash can lose at
	// most the last interval's commits (each still atomic).
	SyncInterval
	// SyncOff never fsyncs during operation (the OS decides); a clean
	// Close still syncs. Fastest, weakest.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return "SyncPolicy(" + strconv.Itoa(int(p)) + ")"
	}
}

// DurabilityOptions configures the durability layer.
type DurabilityOptions struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval;
	// 0 means 100ms.
	SyncInterval time.Duration
	// CheckpointBytes triggers a background checkpoint once this many
	// bytes have been appended since the last one. 0 means the default
	// (1 MiB); negative disables automatic checkpoints (Checkpoint still
	// works).
	CheckpointBytes int64

	// fs overrides the filesystem (tests inject memFS/crashFS).
	fs walFS
}

// defaultCheckpointBytes is the automatic checkpoint threshold.
const defaultCheckpointBytes = 1 << 20

// DefaultDurabilityOptions returns the options Open uses: fsync on every
// commit, automatic checkpoints.
func DefaultDurabilityOptions() DurabilityOptions {
	return DurabilityOptions{Sync: SyncAlways}
}

// WithDurability attaches a durability configuration to the database.
// The WAL itself is opened (and recovery runs) in Open/OpenContext —
// construct durable databases with those, not with NewDatabase directly.
func WithDurability(path string, opts DurabilityOptions) Option {
	return func(db *Database) {
		db.durPath = path
		db.durOpts = opts
		db.durSet = true
	}
}

// Open opens (creating if needed) a durable database stored in the
// directory at path: it recovers committed state from the latest
// snapshot plus the WAL, then arms logging so every later commit is
// appended. Combine with WithDurability for non-default fsync or
// checkpoint policies (an explicit non-empty path argument wins over the
// option's).
func Open(path string, opts ...Option) (*Database, error) {
	return OpenContext(context.Background(), path, opts...)
}

// OpenContext is Open under a context: cancellation aborts recovery
// replay cleanly with a typed ErrCanceled error.
func OpenContext(ctx context.Context, path string, opts ...Option) (*Database, error) {
	db := NewDatabase(opts...)
	if path != "" {
		db.durPath = path
	}
	if db.durPath == "" {
		return nil, errf(ErrMisuse, "sql: Open requires a database path")
	}
	db.durSet = true
	if err := db.openWAL(ctx); err != nil {
		db.closed.Store(true)
		return nil, err
	}
	return db, nil
}

// wrapIOErr classifies a filesystem error as a typed ErrIO.
func wrapIOErr(err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*Error); ok {
		return err
	}
	return &Error{Code: ErrIO, Msg: "sql: wal I/O error: " + err.Error(), Cause: err}
}

// walSnapName / walLogName name generation g's files inside dir.
func walSnapName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%d.sql", gen))
}

func walLogName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen))
}

// parseGen extracts the generation from a snap-/wal- file name; ok=false
// for anything else (including .tmp leftovers).
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	g, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// ---------------------------------------------------------------------------
// Logical ops and their binary encoding

// walOp is one logical change captured at DML/DDL time and replayed at
// recovery.
type walOp struct {
	kind  byte   // 'I' insert, 'D' delete, 'U' update, 'S' DDL
	table string // I/D/U
	sql   string // S
	row   Row    // I: new row; D: deleted image; U: old image
	row2  Row    // U: new image
}

func appendU16(b []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(b, v)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendWalString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendWalValue encodes one Value: kind byte + fixed/length-prefixed body.
func appendWalValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case KindInt:
		b = appendU64(b, uint64(v.i))
	case KindFloat:
		b = appendU64(b, math.Float64bits(v.f))
	case KindText:
		b = appendWalString(b, v.s)
	}
	return b
}

func appendWalRow(b []byte, r Row) []byte {
	b = appendU16(b, uint16(len(r)))
	for _, v := range r {
		b = appendWalValue(b, v)
	}
	return b
}

// appendWalOp encodes one op (as the body of an 'O' record or an element
// of a 'T' batch).
func appendWalOp(b []byte, op walOp) []byte {
	b = append(b, op.kind)
	switch op.kind {
	case 'S':
		b = appendWalString(b, op.sql)
	case 'I', 'D':
		b = appendWalString(b, op.table)
		b = appendWalRow(b, op.row)
	case 'U':
		b = appendWalString(b, op.table)
		b = appendWalRow(b, op.row)
		b = appendWalRow(b, op.row2)
	}
	return b
}

// appendWalRecord frames a payload as one checksummed record.
func appendWalRecord(b []byte, payload []byte) []byte {
	b = appendU32(b, uint32(len(payload)))
	b = appendU32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// walDecoder walks an encoded buffer with a sticky error.
type walDecoder struct {
	b   []byte
	off int
	err error
}

func (d *walDecoder) fail() {
	if d.err == nil {
		d.err = errf(ErrIO, "sql: wal record decode error at byte %d", d.off)
	}
}

func (d *walDecoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *walDecoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *walDecoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *walDecoder) byte() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *walDecoder) str() string {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *walDecoder) value() Value {
	k := Kind(d.byte())
	switch k {
	case KindNull:
		return Null
	case KindBool:
		return Bool(d.byte() != 0)
	case KindInt:
		return Int(int64(d.u64()))
	case KindFloat:
		return Float(math.Float64frombits(d.u64()))
	case KindText:
		return Text(d.str())
	default:
		d.fail()
		return Null
	}
}

func (d *walDecoder) row() Row {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	r := make(Row, 0, n)
	for i := 0; i < n; i++ {
		r = append(r, d.value())
	}
	return r
}

// op decodes one walOp (after the caller consumed the record kind that
// introduced it, for 'O'; or positioned at an element of a 'T' batch).
func (d *walDecoder) op() walOp {
	var op walOp
	op.kind = d.byte()
	switch op.kind {
	case 'S':
		op.sql = d.str()
	case 'I', 'D':
		op.table = d.str()
		op.row = d.row()
	case 'U':
		op.table = d.str()
		op.row = d.row()
		op.row2 = d.row()
	default:
		d.fail()
	}
	return op
}

// ---------------------------------------------------------------------------
// The writer

// walWriter owns the active WAL file. All appends serialise on mu;
// commit-path callers additionally hold the database's single-writer
// latch, so log order equals commit order.
type walWriter struct {
	db   *Database
	fs   walFS
	dir  string
	opts DurabilityOptions

	// armed gates op capture: recovery and snapshot loading run unarmed
	// so replaying history does not re-log it.
	armed atomic.Bool

	mu        sync.Mutex
	f         walFile
	gen       uint64
	off       int64 // last good record boundary (all bytes before it are whole records)
	dirty     bool  // unsynced appends pending (SyncInterval)
	poisoned  bool  // a commit append/fsync failed; all later commits fail fast
	seq       uint64
	sinceCkpt int64

	// Group commit (SyncAlways). Appends happen under mu (and the
	// single-writer latch), but the fsync that makes a commit durable is
	// performed by waitSync AFTER the committer released both, against the
	// (gen, off) position its record ended at. One waiter elects itself
	// leader and fsyncs; every commit whose position the fsync covered is
	// released together — concurrent commits batch into one fsync instead
	// of one each. syncMu orders only this election state, never the file,
	// so appends and fsyncs overlap.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	syncing  bool   // a leader's fsync is in flight
	sGen     uint64 // generation synced refers to
	synced   int64  // bytes of sGen known durable
	syncErr  error  // sticky fsync failure (writer is also poisoned)

	stop chan struct{} // closes the interval-sync loop
	done chan struct{}
}

// appendLocked writes one buffer of whole records and applies the fsync
// policy. w.mu held.
func (w *walWriter) appendLocked(buf []byte) error {
	if w.poisoned {
		return errf(ErrIO, "sql: wal disabled by earlier I/O error (reopen to recover)")
	}
	if _, err := w.f.Write(buf); err != nil {
		// A short or failed write may have left a partial record; cut the
		// tail back to the last good boundary (best effort — recovery
		// drops a torn tail anyway) and poison the writer.
		w.poisoned = true
		_ = w.f.Truncate(w.off)
		return wrapIOErr(err)
	}
	w.off += int64(len(buf))
	w.sinceCkpt += int64(len(buf))
	w.db.stats.walAppends.Add(1)
	w.db.stats.walBytes.Add(uint64(len(buf)))
	// Under SyncAlways durability is the caller's waitSync, outside both
	// mu and the single-writer latch, so concurrent commits group into
	// shared fsyncs.
	if w.opts.Sync == SyncInterval {
		w.dirty = true
	}
	return nil
}

// waitSync blocks until the log is durable through (gen, target) — the
// position a commit's record ended at — or the writer fails. SyncAlways
// only; the other policies accept the loss window by contract. The first
// arriving waiter becomes the leader and fsyncs once for everyone queued
// behind it; a commit released by someone else's fsync (or by a
// checkpoint retiring its generation) counts as a group commit.
func (w *walWriter) waitSync(gen uint64, target int64) error {
	if w.opts.Sync != SyncAlways || debugWALSkipSync {
		return nil
	}
	led := false
	for {
		w.syncMu.Lock()
		for {
			if w.sGen > gen || (w.sGen == gen && w.synced >= target) {
				w.syncMu.Unlock()
				if !led {
					w.db.stats.walGroupCommits.Add(1)
				}
				return nil
			}
			if w.syncErr != nil {
				err := w.syncErr
				w.syncMu.Unlock()
				return err
			}
			if !w.syncing {
				break
			}
			w.syncCond.Wait()
		}
		w.syncing = true
		led = true
		w.syncMu.Unlock()

		// Leader: capture the live file and its extent under mu, then
		// fsync without holding it — appends proceed during the fsync and
		// pile up for the next leader.
		w.mu.Lock()
		f, fgen, foff, poisoned := w.f, w.gen, w.off, w.poisoned
		w.mu.Unlock()
		var err error
		if poisoned {
			err = errf(ErrIO, "sql: wal disabled by earlier I/O error (reopen to recover)")
		} else if err = wrapIOErr(f.Sync()); err != nil {
			// A checkpoint may have rotated generations and closed this
			// file mid-fsync. Its snapshot already made every record of
			// the old generation durable, so a stale-generation failure is
			// discarded; a same-generation failure is real and poisons the
			// writer (bytes written, durability unknown).
			w.mu.Lock()
			if w.gen > fgen {
				err = nil
			} else {
				w.poisoned = true
			}
			w.mu.Unlock()
		}
		w.syncMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
		} else if w.sGen == fgen {
			if w.synced < foff {
				w.synced = foff
			}
		} else if w.sGen < fgen {
			w.sGen, w.synced = fgen, foff
		}
		w.syncCond.Broadcast()
		w.syncMu.Unlock()
		// Loop to re-check our own position: the fsync (or a concurrent
		// checkpoint) normally covered it, but if a rotation intervened we
		// may need one more pass.
	}
}

// appendCommit logs one committed unit: a 'T' record for an autocommit
// statement, a B/O.../C frame for an explicit transaction. Called at
// commit time under the database's single-writer latch. Returns the
// (generation, offset) position the record ended at; the caller makes it
// durable with waitSync after releasing the latch, so concurrent commits
// share fsyncs.
func (w *walWriter) appendCommit(ops []walOp, auto bool) (uint64, int64, error) {
	w.mu.Lock()
	w.seq++
	var buf []byte
	if auto {
		payload := []byte{'T'}
		payload = appendU64(payload, w.seq)
		payload = appendU32(payload, uint32(len(ops)))
		for _, op := range ops {
			payload = appendWalOp(payload, op)
		}
		buf = appendWalRecord(nil, payload)
	} else {
		begin := appendU64([]byte{'B'}, w.seq)
		buf = appendWalRecord(nil, begin)
		for _, op := range ops {
			buf = appendWalRecord(buf, appendWalOp([]byte{'O'}, op))
		}
		commit := appendU64([]byte{'C'}, w.seq)
		buf = appendWalRecord(buf, commit)
	}
	err := w.appendLocked(buf)
	gen, off := w.gen, w.off
	w.mu.Unlock()
	if err == nil {
		w.db.maybeCheckpoint()
	}
	return gen, off, err
}

// appendDDL logs one standalone (autocommit) DDL statement, durable on
// return (DDL is rare — it pays its own fsync rather than joining a
// group).
func (w *walWriter) appendDDL(sql string) error {
	w.mu.Lock()
	payload := appendWalString([]byte{'S'}, sql)
	err := w.appendLocked(appendWalRecord(nil, payload))
	gen, off := w.gen, w.off
	w.mu.Unlock()
	if err == nil {
		err = w.waitSync(gen, off)
	}
	if err == nil {
		w.db.maybeCheckpoint()
	}
	return err
}

// wantCheckpoint reports whether enough bytes accumulated since the last
// checkpoint (and automatic checkpointing is enabled and the writer
// healthy).
func (w *walWriter) wantCheckpoint() bool {
	threshold := w.opts.CheckpointBytes
	if threshold < 0 {
		return false
	}
	if threshold == 0 {
		threshold = defaultCheckpointBytes
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.poisoned && w.sinceCkpt >= threshold
}

// syncLoop is the SyncInterval background fsync.
func (w *walWriter) syncLoop() {
	defer close(w.done)
	iv := w.opts.SyncInterval
	if iv <= 0 {
		iv = 100 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && !w.poisoned {
				if err := w.f.Sync(); err != nil {
					w.poisoned = true
				} else {
					w.dirty = false
				}
			}
			w.mu.Unlock()
		}
	}
}

// close stops the sync loop, syncs once more (clean shutdown persists
// everything regardless of policy) and closes the file.
func (w *walWriter) close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if !w.poisoned {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return wrapIOErr(err)
}

// ---------------------------------------------------------------------------
// Checkpointing

// Checkpoint snapshots the committed state to a new generation and
// retires the current WAL: the log is effectively truncated, so recovery
// replays only commits since the snapshot. Runs under the single-writer
// latch (writers pause; lock-free readers do not). Returns ErrMisuse on
// an in-memory database and ErrIO if the WAL is poisoned or the
// filesystem fails — in the failure cases the previous generation stays
// intact and active.
func (db *Database) Checkpoint() error {
	if db.wal == nil {
		return errf(ErrMisuse, "sql: database has no durability layer")
	}
	return db.wal.checkpoint()
}

func (w *walWriter) checkpoint() error {
	db := w.db
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poisoned {
		return errf(ErrIO, "sql: wal disabled by earlier I/O error (reopen to recover)")
	}
	g := w.gen + 1
	snapTmp := walSnapName(w.dir, g) + ".tmp"
	abort := func(err error, alsoLog bool) error {
		_ = w.fs.Remove(snapTmp)
		if alsoLog {
			_ = w.fs.Remove(walLogName(w.dir, g))
		}
		return wrapIOErr(err)
	}
	// 1. Write the full committed state to a temp snapshot and fsync it.
	// The snapshot is captured fresh (not via beginRead, which would join
	// an open session transaction and see its uncommitted writes).
	f, err := w.fs.Create(snapTmp)
	if err != nil {
		return wrapIOErr(err)
	}
	snap := db.tm.capture(0)
	var sb strings.Builder
	err = db.dumpSnapshot(&sb, snap)
	db.tm.release(snap)
	if err == nil {
		_, err = f.Write([]byte(sb.String()))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return abort(err, false)
	}
	// 2. Create the new generation's empty log and make it durable.
	nf, err := w.fs.Create(walLogName(w.dir, g))
	if err != nil {
		return abort(err, false)
	}
	if _, err = nf.Write(walMagic); err == nil {
		err = nf.Sync()
	}
	if err != nil {
		_ = nf.Close()
		return abort(err, true)
	}
	// 3. Commit point: publish the snapshot under its final name.
	if err := w.fs.Rename(snapTmp, walSnapName(w.dir, g)); err != nil {
		_ = nf.Close()
		return abort(err, true)
	}
	// 4. Switch the writer; retire superseded generations (best effort —
	// recovery ignores generations below the newest snapshot).
	old := w.f
	w.f, w.gen, w.off, w.dirty, w.sinceCkpt = nf, g, int64(len(walMagic)), false, 0
	_ = old.Close()
	// The fsynced snapshot covers every record of the retired generation,
	// including any a group-commit leader had not fsynced yet: advance the
	// durable horizon and release those waiters.
	w.syncMu.Lock()
	if w.sGen < g {
		w.sGen, w.synced = g, w.off
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	w.removeObsolete(g)
	db.stats.checkpoints.Add(1)
	return nil
}

// removeObsolete deletes snapshot and log generations below keep.
// Best effort: leftovers are ignored by recovery and retried by the next
// checkpoint.
func (w *walWriter) removeObsolete(keep uint64) {
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if g, ok := parseGen(name, "snap-", ".sql"); ok && g < keep {
			_ = w.fs.Remove(filepath.Join(w.dir, name))
		}
		if g, ok := parseGen(name, "wal-", ".log"); ok && g < keep {
			_ = w.fs.Remove(filepath.Join(w.dir, name))
		}
	}
}
