package sqldb

import (
	"context"
	"math"
	"sort"
	"sync"
)

// This file implements the MVCC transaction layer: per-row version chains
// tagged with (xmin, xmax) transaction ids, snapshots captured at statement
// or transaction start, and the BEGIN/COMMIT/ROLLBACK surface.
//
// The concurrency contract:
//
//   - Readers never block and never hold a lock while a cursor iterates.
//     A statement captures a snapshot (a point in transaction-id space),
//     then evaluates every version chain against it using atomic loads
//     only. Writers committing mid-iteration neither stall the reader nor
//     change what it sees.
//   - Writers never wait for readers. They serialise among themselves on
//     Database.writeMu — a single-writer model: an autocommit statement
//     holds it for the statement, an explicit transaction from its first
//     write until commit/rollback (a second concurrently writing
//     transaction blocks until the first finishes; this engine detects no
//     write-write conflicts because it never runs two writers at once).
//   - Versions made unreachable (superseded, deleted, or rolled back) are
//     reclaimed by a background vacuum (vacuum.go) once they are invisible
//     to every registered snapshot — the oldest-active-snapshot horizon.
//
// Visibility: a version is visible to snapshot s when s sees its creator
// (xmin committed before the snapshot, or the snapshot's own transaction)
// and does not see its deleter (xmax zero, or a transaction the snapshot
// considers in-progress/future). Version chains hang off stable row ids,
// newest first: UPDATE prepends a new version at the same slot (row ids
// remain stable, scan order observable without ORDER BY is preserved),
// DELETE stamps xmax on the head, INSERT opens a new slot.
//
// Memory model: a writer publishes each version with an atomic store and
// commits by removing its xid from the in-progress set under txnManager.mu;
// a reader captures its snapshot under the same mutex. Capture-after-commit
// therefore happens-after every store the committed transaction made, and
// any store the reader might miss belongs to a transaction its snapshot
// treats as in-progress or future — invisible either way.

// invalidXID marks a version as never-visible (used transiently).
const invalidXID = math.MaxUint64

// snapshot is a point in transaction-id space: it sees every transaction
// that committed before it was captured, plus its own.
type snapshot struct {
	// xid is the observing transaction's id; 0 for a read-only snapshot
	// (autocommit SELECT).
	xid uint64
	// next: transaction ids >= next had not been allocated at capture.
	next uint64
	// inPro holds the transaction ids in progress at capture (own xid
	// excluded), sorted ascending.
	inPro []uint64

	// refs counts registered holders (statement, cursor, transaction);
	// guarded by txnManager.mu. Unregistered statement snapshots used by
	// DML under writeMu keep refs at 0.
	refs int
}

// sees reports whether the snapshot observes transaction x as committed
// (or as its own).
func (s *snapshot) sees(x uint64) bool {
	if x == s.xid && x != 0 {
		return true
	}
	if x >= s.next {
		return false
	}
	i := sort.Search(len(s.inPro), func(i int) bool { return s.inPro[i] >= x })
	return i >= len(s.inPro) || s.inPro[i] != x
}

// visibleVersion walks a newest-first version chain and returns the row
// visible to the snapshot, or nil. Lock-free: chain links and xmax are
// atomic, xmin is immutable after publication.
func visibleVersion(head *rowVersion, s *snapshot) Row {
	for v := head; v != nil; v = v.next.Load() {
		if v.xmin == invalidXID || !s.sees(v.xmin) {
			continue
		}
		if xmax := v.xmax.Load(); xmax != 0 && s.sees(xmax) {
			// Deleted (or superseded by a visible update, in which case
			// the newer version was already returned above).
			return nil
		}
		return v.row
	}
	return nil
}

// latestRow returns the current committed-or-own row of a chain, ignoring
// snapshots. Valid only under writeMu (where every chain head is committed
// or belongs to the running writer) and for best-effort contexts that
// carry no snapshot (plain EXPLAIN).
func latestRow(head *rowVersion) Row {
	if head == nil || head.xmin == invalidXID || head.xmax.Load() != 0 {
		return nil
	}
	return head.row
}

// txnManager allocates transaction ids, tracks which are in progress, and
// registers live snapshots so the vacuum horizon can be computed.
type txnManager struct {
	mu         sync.Mutex
	nextXID    uint64
	inProgress map[uint64]struct{}
	snaps      map[*snapshot]struct{}
}

func newTxnManager() *txnManager {
	return &txnManager{
		nextXID:    1,
		inProgress: make(map[uint64]struct{}),
		snaps:      make(map[*snapshot]struct{}),
	}
}

// begin allocates a transaction id and marks it in progress.
func (tm *txnManager) begin() uint64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	xid := tm.nextXID
	tm.nextXID++
	tm.inProgress[xid] = struct{}{}
	return xid
}

// finish commits or aborts xid: it stops being in-progress. For a commit
// this is the publication point; for an abort the caller has already
// unwound the transaction's versions.
func (tm *txnManager) finish(xid uint64) {
	tm.mu.Lock()
	delete(tm.inProgress, xid)
	tm.mu.Unlock()
}

// captureLocked builds a snapshot for xid under tm.mu.
func (tm *txnManager) captureLocked(xid uint64) *snapshot {
	s := &snapshot{xid: xid, next: tm.nextXID}
	for x := range tm.inProgress {
		if x != xid {
			s.inPro = append(s.inPro, x)
		}
	}
	sort.Slice(s.inPro, func(i, j int) bool { return s.inPro[i] < s.inPro[j] })
	return s
}

// capture builds and registers a snapshot with one reference.
func (tm *txnManager) capture(xid uint64) *snapshot {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	s := tm.captureLocked(xid)
	s.refs = 1
	tm.snaps[s] = struct{}{}
	return s
}

// captureStmt builds an unregistered statement snapshot for a DML
// statement. It does not hold the vacuum horizon: the statement runs under
// writeMu, which vacuum also takes, so no reclaim can interleave.
func (tm *txnManager) captureStmt(xid uint64) *snapshot {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.captureLocked(xid)
}

// addRef takes an extra reference on a registered snapshot (a cursor that
// may outlive the statement or transaction that captured it).
func (tm *txnManager) addRef(s *snapshot) {
	tm.mu.Lock()
	s.refs++
	tm.snaps[s] = struct{}{}
	tm.mu.Unlock()
}

// release drops one reference; the snapshot stops pinning the vacuum
// horizon when the last holder lets go.
func (tm *txnManager) release(s *snapshot) {
	tm.mu.Lock()
	if s.refs--; s.refs <= 0 {
		delete(tm.snaps, s)
	}
	tm.mu.Unlock()
}

// liveSnapshots reports the number of registered snapshots — the leak
// test's probe, mirroring the parallel worker counter.
func (tm *txnManager) liveSnapshots() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return len(tm.snaps)
}

// horizon returns the oldest transaction id any live observer could still
// consider in-progress or future. A version deleted or superseded by a
// committed transaction older than the horizon is invisible to every
// current and future snapshot and may be reclaimed.
func (tm *txnManager) horizon() uint64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	h := tm.nextXID
	for x := range tm.inProgress {
		if x < h {
			h = x
		}
	}
	for s := range tm.snaps {
		if s.next < h {
			h = s.next
		}
		if len(s.inPro) > 0 && s.inPro[0] < h {
			h = s.inPro[0]
		}
	}
	return h
}

// ---------------------------------------------------------------------------
// Transactions

// undo op kinds, replayed in reverse on rollback.
const (
	undoInsert      = iota // drop the inserted version (slot becomes empty)
	undoUpdate             // unlink our version, revive the one beneath it
	undoDelete             // clear xmax on the head we stamped
	undoCreateTable        // unpublish the created table
	undoDropTable          // republish the dropped table
	undoCreateIndex        // unpublish the created index
)

type undoRec struct {
	kind  int
	table *Table
	id    int
	// key is the catalog (or index-map) key for the DDL undo kinds.
	key string
}

// Txn is an explicit transaction. It is not safe for concurrent use by
// multiple goroutines (like database/sql's *Tx); independent goroutines
// each Begin their own. Reads inside the transaction run against the
// snapshot captured at Begin plus the transaction's own writes; each DML
// statement additionally sees everything committed before the statement
// started. The first write acquires the database's single-writer latch and
// holds it until Commit or Rollback.
type Txn struct {
	db   *Database
	xid  uint64
	snap *snapshot

	wrote bool // holds db.writeMu
	auto  bool // autocommit statement transaction: no undo, never rolled back
	done  bool
	undo  []undoRec

	// walOps are the logical changes to log at commit, in application
	// order. Captured only when the database has an armed WAL (wal.go);
	// discarded by rollback.
	walOps []walOp
}

// Begin starts an explicit transaction. Programmatic equivalent of the
// SQL BEGIN statement, but independent of the session transaction: many
// goroutines may hold concurrent Txns (writers serialise on first write).
func (db *Database) Begin() *Txn {
	xid := db.tm.begin()
	tx := &Txn{db: db, xid: xid, snap: db.tm.capture(xid)}
	db.stats.begins.Add(1)
	db.stats.activeTxns.Add(1)
	return tx
}

// record notes an undo step for rollback. Autocommit statement
// transactions skip it: they are never rolled back (a failing statement
// keeps its partial work, the engine's documented non-atomic statement
// semantics).
func (tx *Txn) record(kind int, t *Table, id int) {
	if tx.auto {
		return
	}
	tx.undo = append(tx.undo, undoRec{kind: kind, table: t, id: id})
}

// recordDDL notes a schema-change undo step. DDL inside an explicit
// transaction rolls back with it, keeping the WAL (which only sees
// committed frames) and the in-memory catalog in lockstep.
func (tx *Txn) recordDDL(kind int, t *Table, key string) {
	if tx.auto {
		return
	}
	tx.undo = append(tx.undo, undoRec{kind: kind, table: t, key: key})
}

// logWALOp captures one logical change for the commit-time WAL append.
// A no-op unless the database has an armed WAL, so the in-memory engine
// pays one nil check per DML op.
func (tx *Txn) logWALOp(op walOp) {
	if w := tx.db.wal; w != nil && w.armed.Load() {
		tx.walOps = append(tx.walOps, op)
	}
}

// Commit makes the transaction's writes visible to every later snapshot.
// On a durable database the transaction's frame is appended to the WAL
// (and fsynced, per policy) before publication; an append failure
// returns a typed ErrIO — the writes are still applied in memory, but
// the WAL is poisoned and every later commit fails the same way until
// the database is reopened (which recovers the durable prefix).
func (tx *Txn) Commit() error {
	if tx.done {
		return errf(ErrMisuse, "sql: transaction already finished")
	}
	tx.done = true
	db := tx.db
	var ioErr error
	var syncGen uint64
	var syncOff int64
	if len(tx.walOps) > 0 {
		// Still under writeMu here (walOps imply wrote), so log order
		// equals commit order. The record is made durable below, after
		// the latch is released, so concurrent commits group-fsync.
		syncGen, syncOff, ioErr = db.wal.appendCommit(tx.walOps, false)
	}
	db.tm.finish(tx.xid) // publication point
	db.tm.release(tx.snap)
	db.stats.commits.Add(1)
	db.stats.activeTxns.Add(-1)
	if tx.wrote {
		db.writeMu.Unlock()
		if ioErr == nil && syncOff > 0 {
			ioErr = db.wal.waitSync(syncGen, syncOff)
		}
		db.maybeVacuum()
		db.maybeSeal()
	}
	return ioErr
}

// Rollback unwinds the transaction's writes and discards it. The undo log
// is replayed in reverse while the xid is still marked in-progress, so no
// concurrent snapshot ever observes an aborted version as committed.
func (tx *Txn) Rollback() error {
	if tx.done {
		return errf(ErrMisuse, "sql: transaction already finished")
	}
	tx.done = true
	db := tx.db
	if tx.wrote {
		for i := len(tx.undo) - 1; i >= 0; i-- {
			u := tx.undo[i]
			switch u.kind {
			case undoInsert:
				u.table.setHead(u.id, nil)
				u.table.liveRows.Add(-1)
				u.table.staleIdx.Add(1)
			case undoUpdate:
				head := u.table.head(u.id)
				old := head.next.Load()
				old.xmax.Store(0)
				u.table.setHead(u.id, old)
				u.table.staleIdx.Add(1)
			case undoDelete:
				u.table.head(u.id).xmax.Store(0)
				u.table.liveRows.Add(1)
			case undoCreateTable:
				db.publishTables(func(m map[string]*Table) { delete(m, u.key) })
			case undoDropTable:
				t := u.table
				db.publishTables(func(m map[string]*Table) { m[u.key] = t })
			case undoCreateIndex:
				u.table.publishIndexes(func(m map[string]*Index) { delete(m, u.key) })
			}
		}
		// Rolled-back versions may have left superset entries behind in
		// the indexes; they are invisible (recheck filters them) and the
		// vacuum sweeps them out.
		db.garbage.Add(int64(len(tx.undo)))
	}
	db.tm.finish(tx.xid)
	db.tm.release(tx.snap)
	db.stats.rollbacks.Add(1)
	db.stats.activeTxns.Add(-1)
	if tx.wrote {
		db.writeMu.Unlock()
		db.maybeVacuum()
	}
	return nil
}

// ensureWrite acquires the single-writer latch on the transaction's first
// writing statement.
func (tx *Txn) ensureWrite() {
	if !tx.wrote {
		tx.db.writeMu.Lock()
		tx.wrote = true
	}
}

// Exec executes one statement inside the transaction. BEGIN is rejected;
// COMMIT/ROLLBACK finish the transaction.
func (tx *Txn) Exec(sql string, params ...any) (int, error) {
	return tx.ExecContext(context.Background(), sql, params...)
}

// ExecContext is Exec with a cancellation context.
func (tx *Txn) ExecContext(ctx context.Context, sql string, params ...any) (int, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return 0, err
	}
	vals := bindParams(params)
	qc := newQueryCtx(ctx, tx.db)
	defer qc.flush()
	n := 0
	for _, stmt := range stmts {
		m, err := tx.db.execStmt(qc, stmt, vals, tx)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Query executes a SELECT inside the transaction, reading the
// transaction's snapshot plus its own writes.
func (tx *Txn) Query(sql string, params ...any) (*Result, error) {
	return tx.QueryContext(context.Background(), sql, params...)
}

// QueryContext is Query with a cancellation context.
func (tx *Txn) QueryContext(ctx context.Context, sql string, params ...any) (*Result, error) {
	if tx.done {
		return nil, errf(ErrMisuse, "sql: transaction already finished")
	}
	sel, err := tx.db.plans.lookup(sql, "Query")
	if err != nil {
		return nil, err
	}
	return tx.db.querySelect(ctx, sel, bindParams(params), tx)
}

// QueryRows opens a streaming cursor inside the transaction. The cursor
// holds its own snapshot reference and stays valid (and consistent) even
// if the transaction commits before the cursor is drained.
func (tx *Txn) QueryRows(ctx context.Context, sql string, params ...any) (*Rows, error) {
	if tx.done {
		return nil, errf(ErrMisuse, "sql: transaction already finished")
	}
	sel, err := tx.db.plans.lookup(sql, "QueryRows")
	if err != nil {
		return nil, err
	}
	return tx.db.queryRows(ctx, sel, bindParams(params), tx)
}

// ---------------------------------------------------------------------------
// Session transaction (SQL BEGIN/COMMIT/ROLLBACK through Database.Exec)

// beginSession opens the database's session transaction — the one bare
// Exec/Query calls join, giving single-connection SQL semantics.
func (db *Database) beginSession() error {
	db.sessionMu.Lock()
	defer db.sessionMu.Unlock()
	if db.session != nil {
		return errf(ErrMisuse, "sql: cannot start a transaction within a transaction")
	}
	db.session = db.Begin()
	return nil
}

// takeSession detaches and returns the session transaction for COMMIT or
// ROLLBACK.
func (db *Database) takeSession() (*Txn, error) {
	db.sessionMu.Lock()
	defer db.sessionMu.Unlock()
	if db.session == nil {
		return nil, errf(ErrMisuse, "sql: no transaction is active")
	}
	tx := db.session
	db.session = nil
	return tx, nil
}

// currentTxn resolves the transaction a statement should run in: the
// explicit handle when called through Txn methods, else the open session
// transaction, else nil (autocommit).
func (db *Database) currentTxn(tx *Txn) *Txn {
	if tx != nil {
		return tx
	}
	db.sessionMu.Lock()
	defer db.sessionMu.Unlock()
	return db.session
}

// ---------------------------------------------------------------------------
// Statement entry points

// beginRead returns the snapshot a reading statement evaluates visibility
// against, plus a release callback. Autocommit reads capture a fresh
// registered snapshot; reads inside a transaction share its snapshot with
// an extra reference (the release may come from a cursor that outlives
// the transaction).
func (db *Database) beginRead(tx *Txn) (*snapshot, func()) {
	if tx = db.currentTxn(tx); tx != nil {
		db.tm.addRef(tx.snap)
		snap := tx.snap
		return snap, func() { db.tm.release(snap) }
	}
	s := db.tm.capture(0)
	return s, func() { db.tm.release(s) }
}

// beginWrite pins the single-writer latch for one DML statement and
// returns the transaction it runs in plus a statement-end callback. For
// autocommit the transaction is a throwaway that commits in end(), which
// also appends the statement's WAL record on a durable database — end's
// error is the commit-time ErrIO surface and must be propagated (the
// in-memory effects stand either way; see Txn.Commit). Inside an
// explicit transaction the latch stays held (until Commit/Rollback) and
// end() only clears the statement snapshot.
func (db *Database) beginWrite(qc *queryCtx, tx *Txn) (*Txn, func() error, error) {
	if tx = db.currentTxn(tx); tx != nil {
		if tx.done {
			return nil, nil, errf(ErrMisuse, "sql: transaction already finished")
		}
		tx.ensureWrite()
		qc.snap = db.tm.captureStmt(tx.xid)
		qc.wtx = tx
		return tx, func() error {
			qc.snap = nil
			qc.wtx = nil
			return nil
		}, nil
	}
	db.writeMu.Lock()
	xid := db.tm.begin()
	at := &Txn{db: db, xid: xid, auto: true, wrote: true}
	qc.snap = db.tm.captureStmt(xid)
	qc.wtx = at
	return at, func() error {
		qc.snap = nil
		qc.wtx = nil
		at.done = true
		var ioErr error
		var syncGen uint64
		var syncOff int64
		if len(at.walOps) > 0 {
			// A failing statement keeps its partial work (the engine's
			// documented non-atomic statement semantics), so whatever ops
			// were applied are logged as this statement's record.
			syncGen, syncOff, ioErr = db.wal.appendCommit(at.walOps, true)
		}
		db.tm.finish(xid) // autocommit: publication point
		db.writeMu.Unlock()
		if ioErr == nil && syncOff > 0 {
			ioErr = db.wal.waitSync(syncGen, syncOff)
		}
		db.maybeVacuum()
		db.maybeSeal()
		return ioErr
	}, nil
}

// acquireWrite takes the single-writer latch for a DDL statement and
// resolves the transaction it runs in (nil for autocommit DDL). Inside
// an open transaction DDL rides the transaction's latch span and — like
// DML — is undone by rollback, so the catalog never diverges from what
// the WAL will record at commit.
func (db *Database) acquireWrite(tx *Txn) (*Txn, func()) {
	if tx = db.currentTxn(tx); tx != nil {
		tx.ensureWrite()
		return tx, func() {}
	}
	db.writeMu.Lock()
	return nil, db.writeMu.Unlock
}
