package sqldb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{Text("hi"), KindText},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestValueConversions(t *testing.T) {
	if got := Text("42").AsInt(); got != 42 {
		t.Errorf("Text(42).AsInt() = %d", got)
	}
	if got := Text("3.5").AsFloat(); got != 3.5 {
		t.Errorf("Text(3.5).AsFloat() = %v", got)
	}
	if got := Text("3.9").AsInt(); got != 3 {
		t.Errorf("Text(3.9).AsInt() = %d, want 3 (truncate)", got)
	}
	if got := Float(3.0).AsText(); got != "3.0" {
		t.Errorf("Float(3).AsText() = %q, want 3.0", got)
	}
	if got := Int(-5).AsText(); got != "-5" {
		t.Errorf("Int(-5).AsText() = %q", got)
	}
	if got := Bool(true).AsInt(); got != 1 {
		t.Errorf("Bool(true).AsInt() = %d", got)
	}
	if Text("abc").AsInt() != 0 || Text("abc").AsFloat() != 0 {
		t.Error("non-numeric text should convert to 0")
	}
	if Null.AsText() != "" {
		t.Error("Null.AsText() should be empty")
	}
}

func TestValueCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{Null, Int(1), -1},
		{Int(1), Null, 1},
		{Null, Null, 0},
		{Int(5), Text("banana"), -1}, // numbers before non-numeric text
		{Text("10"), Int(10), 1},     // strict storage-class order: text after numbers
		{Bool(true), Int(1), 0},
		{Bool(false), Int(0), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareLargeInts(t *testing.T) {
	a := Int(1 << 62)
	b := Int(1<<62 + 1)
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("large int comparison lost precision")
	}
}

// randomValue generates arbitrary values for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return Int(int64(r.Intn(2001) - 1000))
	case 2:
		return Float(float64(r.Intn(2001)-1000) / 8)
	case 3:
		letters := []string{"", "a", "ab", "zebra", "10", "-3.5", "Hello World"}
		return Text(letters[r.Intn(len(letters))])
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func TestValueCompareProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	// Antisymmetry and reflexivity.
	f := func() bool {
		a, b := randomValue(r), randomValue(r)
		if a.Compare(a) != 0 || b.Compare(b) != 0 {
			return false
		}
		return a.Compare(b) == -b.Compare(a)
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatal("Compare violates antisymmetry/reflexivity")
		}
	}
	// Transitivity over random triples.
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("Compare violates transitivity: %v, %v, %v", a, b, c)
		}
	}
}

func TestValueKeyConsistentWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := randomValue(r), randomValue(r)
		if a.Equal(b) && a.Key() != b.Key() {
			t.Fatalf("Equal values with different keys: %v (%q) vs %v (%q)", a, a.Key(), b, b.Key())
		}
		if !a.Equal(b) && a.Key() == b.Key() {
			t.Fatalf("Unequal values with same key: %v vs %v (key %q)", a, b, a.Key())
		}
	}
}

func TestGoValueRoundTrip(t *testing.T) {
	if err := quick.Check(func(i int64, f float64, s string, b bool) bool {
		return GoValue(i).AsInt() == i &&
			(GoValue(f).AsFloat() == f || f != f) && // NaN allowed to differ
			GoValue(s).AsText() == s &&
			GoValue(b).AsBool() == b
	}, nil); err != nil {
		t.Error(err)
	}
	if !GoValue(nil).IsNull() {
		t.Error("GoValue(nil) should be NULL")
	}
	if GoValue(uint8(3)).AsInt() != 3 {
		t.Error("GoValue(uint8) mismatch")
	}
}

func TestValueStringSQLLiterals(t *testing.T) {
	if got := Text("it's").String(); got != "'it''s'" {
		t.Errorf("Text escape = %q", got)
	}
	if got := Null.String(); got != "NULL" {
		t.Errorf("Null literal = %q", got)
	}
	if got := Int(12).String(); got != "12" {
		t.Errorf("Int literal = %q", got)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Text("x")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].AsInt() != 1 {
		t.Error("Clone shares storage with original")
	}
}
