package sqldb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests and a contention benchmark for WAL group commit (wal.go): under
// SyncAlways, concurrent committers elect one fsync leader per round and
// everyone whose record the leader's fsync covered returns without
// issuing its own — one fsync makes a whole convoy durable.

// slowSyncFS wraps a walFS, counting fsyncs and stretching each one, so
// commit convoys reliably pile up behind an in-flight leader even on a
// single-core host.
type slowSyncFS struct {
	walFS
	delay time.Duration
	syncs atomic.Int64
}

func (s *slowSyncFS) Create(path string) (walFile, error) {
	f, err := s.walFS.Create(path)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{walFile: f, fs: s}, nil
}

func (s *slowSyncFS) OpenAppend(path string) (walFile, int64, error) {
	f, off, err := s.walFS.OpenAppend(path)
	if err != nil {
		return nil, off, err
	}
	return &slowSyncFile{walFile: f, fs: s}, off, nil
}

type slowSyncFile struct {
	walFile
	fs *slowSyncFS
}

func (f *slowSyncFile) Sync() error {
	f.fs.syncs.Add(1)
	if f.fs.delay > 0 {
		time.Sleep(f.fs.delay)
	}
	return f.walFile.Sync()
}

// TestWALGroupCommit: N concurrent committers under SyncAlways must
// finish with fewer fsyncs than commits and a non-zero WALGroupCommits
// count — and every commit must still be durable across reopen.
func TestWALGroupCommit(t *testing.T) {
	fs := &slowSyncFS{walFS: newMemFS(), delay: time.Millisecond}
	opts := DurabilityOptions{fs: fs, Sync: SyncAlways, CheckpointBytes: -1}
	db, err := Open("db", WithDurability("", opts))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE g (id INTEGER, w INTEGER)")

	const workers, per = 8, 25
	base := fs.syncs.Load()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := db.Exec("INSERT INTO g VALUES (?, ?)", w*per+i, w); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	commits := int64(workers * per)
	syncs := fs.syncs.Load() - base
	if syncs >= commits {
		t.Fatalf("%d commits issued %d fsyncs; group commit saved nothing", commits, syncs)
	}
	grouped := db.Stats().WALGroupCommits
	if grouped == 0 {
		t.Fatal("Stats().WALGroupCommits = 0 under concurrent committers")
	}
	t.Logf("%d commits, %d fsyncs, %d group commits", commits, syncs, grouped)
	closeDB(t, db)

	// Durability: every commit that returned must survive reopen.
	db2, err := Open("db", WithDurability("", opts))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer closeDB(t, db2)
	rows := queryStrings(t, db2, "SELECT COUNT(*) FROM g")
	if want := fmt.Sprint(commits); rows[0][0] != want {
		t.Fatalf("recovered %s rows, want %s", rows[0][0], want)
	}
}

// TestWALGroupCommitSerial: a lone committer leads every fsync itself —
// the counter must not claim group commits that never happened.
func TestWALGroupCommitSerial(t *testing.T) {
	fs := &slowSyncFS{walFS: newMemFS()}
	db, err := Open("db", WithDurability("", DurabilityOptions{fs: fs, Sync: SyncAlways, CheckpointBytes: -1}))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	db.MustExec("CREATE TABLE g (id INTEGER)")
	for i := 0; i < 20; i++ {
		db.MustExec("INSERT INTO g VALUES (?)", i)
	}
	if grouped := db.Stats().WALGroupCommits; grouped != 0 {
		t.Fatalf("WALGroupCommits = %d for a strictly serial committer, want 0", grouped)
	}
}

// BenchmarkWALGroupCommit measures commit throughput under fsync
// contention. The fsyncs/op metric is the point: at clients=8 it must
// fall well below 1 (one leader fsync covers a convoy), which is where
// the latency win comes from.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, clients := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			fs := &slowSyncFS{walFS: newMemFS(), delay: 50 * time.Microsecond}
			db, err := Open("db", WithDurability("", DurabilityOptions{fs: fs, Sync: SyncAlways, CheckpointBytes: -1}))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			db.MustExec("CREATE TABLE g (id INTEGER, w INTEGER)")
			var id atomic.Int64
			base := fs.syncs.Load()
			b.SetParallelism(clients)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := db.Exec("INSERT INTO g VALUES (?, 0)", id.Add(1)); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(fs.syncs.Load()-base)/float64(b.N), "fsyncs/op")
		})
	}
}
