package sqldb

import (
	"strings"
)

// isAggregateName reports whether the (upper-cased) function name denotes an
// aggregate.
func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT", "TOTAL":
		return true
	default:
		return false
	}
}

// aggState accumulates one aggregate over the rows of a group.
type aggState interface {
	add(v Value)
	result() Value
}

// mergeableAggState is an aggState whose partial results can be combined
// across parallel workers without observable divergence from the serial
// fold (parallel.go). GROUP_CONCAT (order-sensitive) and DISTINCT
// wrappers (unmergeable dedup sets) deliberately do not implement it;
// the planner checks eligibility before choosing parallel aggregation.
type mergeableAggState interface {
	aggState
	// merge folds another partial state of the same aggregate into this
	// one. The argument is always the same concrete type as the receiver.
	merge(other aggState)
}

// morselAdder is implemented by aggregate states whose float accumulation
// is order-sensitive (SUM, AVG, TOTAL). Parallel workers feed values
// through addMorsel with the morsel ordinal so the state can keep one
// partial float sum per morsel; result() folds the parts in ascending
// morsel order. That makes the engine's float summation order a defined
// property of the data and the morsel size — left-to-right within each
// morsel, then morsel by morsel — independent of worker count and
// scheduling. Serial execution is the degenerate single-part case
// (every add lands on morsel 0), so serial results are unchanged.
type morselAdder interface {
	addMorsel(v Value, morsel int)
}

// sumPart is one morsel's running float sum. Part lists are kept sorted
// ascending by morsel: each worker claims morsels in increasing order,
// so its appends arrive sorted, and mergeParts preserves the invariant.
type sumPart struct {
	morsel int
	f      float64
}

// mergeParts merges two morsel-sorted part lists, summing parts that
// share a morsel (defensive: one morsel is claimed by exactly one
// worker, so collisions should not occur across worker states).
func mergeParts(a, b []sumPart) []sumPart {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]sumPart, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].morsel < b[j].morsel:
			out = append(out, a[i])
			i++
		case b[j].morsel < a[i].morsel:
			out = append(out, b[j])
			j++
		default:
			out = append(out, sumPart{morsel: a[i].morsel, f: a[i].f + b[j].f})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// foldParts folds morsel partial sums in ascending morsel order — the
// documented float summation order.
func foldParts(parts []sumPart) float64 {
	var f float64
	for _, p := range parts {
		f += p.f
	}
	return f
}

// newAggState builds the accumulator for the named aggregate.
func newAggState(fc *FuncCall) (aggState, error) {
	var base aggState
	switch fc.Name {
	case "COUNT":
		base = &countState{star: fc.Star}
	case "SUM":
		base = &sumState{}
	case "TOTAL":
		base = &sumState{total: true}
	case "AVG":
		base = &avgState{}
	case "MIN":
		base = &minMaxState{min: true}
	case "MAX":
		base = &minMaxState{}
	case "GROUP_CONCAT":
		sep := ","
		if len(fc.Args) == 2 {
			if lit, ok := fc.Args[1].(*Literal); ok {
				sep = lit.Val.AsText()
			}
		}
		base = &concatState{sep: sep}
	default:
		return nil, errf(ErrNoFunction, "sql: unknown aggregate %s()", fc.Name)
	}
	if fc.Distinct {
		return &distinctState{inner: base, seen: make(map[string]bool)}, nil
	}
	return base, nil
}

// countState implements COUNT(*) and COUNT(expr).
type countState struct {
	star bool
	n    int64
}

func (s *countState) add(v Value) {
	if s.star || !v.IsNull() {
		s.n++
	}
}
func (s *countState) result() Value { return Int(s.n) }

func (s *countState) merge(other aggState) { s.n += other.(*countState).n }

// sumState implements SUM (NULL over empty input) and TOTAL (0.0 over empty
// input, always REAL), matching SQLite. The float accumulator is a
// morsel-keyed part list (see morselAdder); integer sums merge exactly
// and need no ordering.
type sumState struct {
	total   bool
	sawAny  bool
	allInts bool
	i       int64
	parts   []sumPart
}

func (s *sumState) add(v Value) { s.addMorsel(v, 0) }

func (s *sumState) addMorsel(v Value, morsel int) {
	if v.IsNull() {
		return
	}
	if !s.sawAny {
		s.sawAny = true
		s.allInts = true
	}
	if v.Kind() == KindInt {
		s.i += v.AsInt()
	} else {
		s.allInts = false
	}
	if n := len(s.parts); n > 0 && s.parts[n-1].morsel == morsel {
		s.parts[n-1].f += v.AsFloat()
	} else {
		s.parts = append(s.parts, sumPart{morsel: morsel, f: v.AsFloat()})
	}
}

func (s *sumState) merge(other aggState) {
	o := other.(*sumState)
	if !o.sawAny {
		return
	}
	if !s.sawAny {
		s.sawAny, s.allInts = true, o.allInts
		s.i, s.parts = o.i, o.parts
		return
	}
	s.allInts = s.allInts && o.allInts
	s.i += o.i
	s.parts = mergeParts(s.parts, o.parts)
}

func (s *sumState) result() Value {
	if !s.sawAny {
		if s.total {
			return Float(0)
		}
		return Null
	}
	if s.total {
		return Float(foldParts(s.parts))
	}
	if s.allInts {
		return Int(s.i)
	}
	return Float(foldParts(s.parts))
}

// avgState implements AVG (REAL; NULL over empty input). Like sumState
// it keeps morsel-keyed float parts so the summation order is defined
// under parallel execution.
type avgState struct {
	n     int64
	parts []sumPart
}

func (s *avgState) add(v Value) { s.addMorsel(v, 0) }

func (s *avgState) addMorsel(v Value, morsel int) {
	if v.IsNull() {
		return
	}
	s.n++
	if n := len(s.parts); n > 0 && s.parts[n-1].morsel == morsel {
		s.parts[n-1].f += v.AsFloat()
	} else {
		s.parts = append(s.parts, sumPart{morsel: morsel, f: v.AsFloat()})
	}
}

func (s *avgState) merge(other aggState) {
	o := other.(*avgState)
	s.n += o.n
	s.parts = mergeParts(s.parts, o.parts)
}

func (s *avgState) result() Value {
	if s.n == 0 {
		return Null
	}
	return Float(foldParts(s.parts) / float64(s.n))
}

// minMaxState implements MIN/MAX with NULLs ignored.
type minMaxState struct {
	min    bool
	sawAny bool
	best   Value
}

func (s *minMaxState) add(v Value) {
	if v.IsNull() {
		return
	}
	if !s.sawAny {
		s.sawAny = true
		s.best = v
		return
	}
	c := v.Compare(s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = v
	}
}

func (s *minMaxState) merge(other aggState) {
	o := other.(*minMaxState)
	if !o.sawAny {
		return
	}
	if !s.sawAny {
		s.sawAny, s.best = true, o.best
		return
	}
	c := o.best.Compare(s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = o.best
	}
}

func (s *minMaxState) result() Value {
	if !s.sawAny {
		return Null
	}
	return s.best
}

// concatState implements GROUP_CONCAT.
type concatState struct {
	sep    string
	sawAny bool
	b      strings.Builder
}

func (s *concatState) add(v Value) {
	if v.IsNull() {
		return
	}
	if s.sawAny {
		s.b.WriteString(s.sep)
	}
	s.sawAny = true
	s.b.WriteString(v.AsText())
}

func (s *concatState) result() Value {
	if !s.sawAny {
		return Null
	}
	return Text(s.b.String())
}

// distinctState deduplicates inputs before delegating to the wrapped state.
// Keys encode into a reused scratch buffer, so only the first sighting of
// each distinct value allocates.
type distinctState struct {
	inner aggState
	seen  map[string]bool
	buf   []byte
}

func (s *distinctState) add(v Value) {
	if v.IsNull() {
		s.inner.add(v) // inner decides whether NULL counts
		return
	}
	s.buf = appendValueKey(s.buf[:0], v)
	if s.seen[string(s.buf)] {
		return
	}
	s.seen[string(s.buf)] = true
	s.inner.add(v)
}

func (s *distinctState) result() Value { return s.inner.result() }
