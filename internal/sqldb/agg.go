package sqldb

import (
	"strings"
)

// isAggregateName reports whether the (upper-cased) function name denotes an
// aggregate.
func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT", "TOTAL":
		return true
	default:
		return false
	}
}

// aggState accumulates one aggregate over the rows of a group.
type aggState interface {
	add(v Value)
	result() Value
}

// mergeableAggState is an aggState whose partial results can be combined
// across parallel workers without observable divergence from the serial
// fold (parallel.go). GROUP_CONCAT (order-sensitive) and DISTINCT
// wrappers (unmergeable dedup sets) deliberately do not implement it;
// the planner checks eligibility before choosing parallel aggregation.
type mergeableAggState interface {
	aggState
	// merge folds another partial state of the same aggregate into this
	// one. The argument is always the same concrete type as the receiver.
	merge(other aggState)
}

// newAggState builds the accumulator for the named aggregate.
func newAggState(fc *FuncCall) (aggState, error) {
	var base aggState
	switch fc.Name {
	case "COUNT":
		base = &countState{star: fc.Star}
	case "SUM":
		base = &sumState{}
	case "TOTAL":
		base = &sumState{total: true}
	case "AVG":
		base = &avgState{}
	case "MIN":
		base = &minMaxState{min: true}
	case "MAX":
		base = &minMaxState{}
	case "GROUP_CONCAT":
		sep := ","
		if len(fc.Args) == 2 {
			if lit, ok := fc.Args[1].(*Literal); ok {
				sep = lit.Val.AsText()
			}
		}
		base = &concatState{sep: sep}
	default:
		return nil, errf(ErrNoFunction, "sql: unknown aggregate %s()", fc.Name)
	}
	if fc.Distinct {
		return &distinctState{inner: base, seen: make(map[string]bool)}, nil
	}
	return base, nil
}

// countState implements COUNT(*) and COUNT(expr).
type countState struct {
	star bool
	n    int64
}

func (s *countState) add(v Value) {
	if s.star || !v.IsNull() {
		s.n++
	}
}
func (s *countState) result() Value { return Int(s.n) }

func (s *countState) merge(other aggState) { s.n += other.(*countState).n }

// sumState implements SUM (NULL over empty input) and TOTAL (0.0 over empty
// input, always REAL), matching SQLite.
type sumState struct {
	total   bool
	sawAny  bool
	allInts bool
	i       int64
	f       float64
}

func (s *sumState) add(v Value) {
	if v.IsNull() {
		return
	}
	if !s.sawAny {
		s.sawAny = true
		s.allInts = true
	}
	if v.Kind() == KindInt {
		s.i += v.AsInt()
	} else {
		s.allInts = false
	}
	s.f += v.AsFloat()
}

func (s *sumState) merge(other aggState) {
	o := other.(*sumState)
	if !o.sawAny {
		return
	}
	if !s.sawAny {
		s.sawAny, s.allInts = true, o.allInts
		s.i, s.f = o.i, o.f
		return
	}
	s.allInts = s.allInts && o.allInts
	s.i += o.i
	s.f += o.f
}

func (s *sumState) result() Value {
	if !s.sawAny {
		if s.total {
			return Float(0)
		}
		return Null
	}
	if s.total {
		return Float(s.f)
	}
	if s.allInts {
		return Int(s.i)
	}
	return Float(s.f)
}

// avgState implements AVG (REAL; NULL over empty input).
type avgState struct {
	n   int64
	sum float64
}

func (s *avgState) add(v Value) {
	if v.IsNull() {
		return
	}
	s.n++
	s.sum += v.AsFloat()
}

func (s *avgState) merge(other aggState) {
	o := other.(*avgState)
	s.n += o.n
	s.sum += o.sum
}

func (s *avgState) result() Value {
	if s.n == 0 {
		return Null
	}
	return Float(s.sum / float64(s.n))
}

// minMaxState implements MIN/MAX with NULLs ignored.
type minMaxState struct {
	min    bool
	sawAny bool
	best   Value
}

func (s *minMaxState) add(v Value) {
	if v.IsNull() {
		return
	}
	if !s.sawAny {
		s.sawAny = true
		s.best = v
		return
	}
	c := v.Compare(s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = v
	}
}

func (s *minMaxState) merge(other aggState) {
	o := other.(*minMaxState)
	if !o.sawAny {
		return
	}
	if !s.sawAny {
		s.sawAny, s.best = true, o.best
		return
	}
	c := o.best.Compare(s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = o.best
	}
}

func (s *minMaxState) result() Value {
	if !s.sawAny {
		return Null
	}
	return s.best
}

// concatState implements GROUP_CONCAT.
type concatState struct {
	sep    string
	sawAny bool
	b      strings.Builder
}

func (s *concatState) add(v Value) {
	if v.IsNull() {
		return
	}
	if s.sawAny {
		s.b.WriteString(s.sep)
	}
	s.sawAny = true
	s.b.WriteString(v.AsText())
}

func (s *concatState) result() Value {
	if !s.sawAny {
		return Null
	}
	return Text(s.b.String())
}

// distinctState deduplicates inputs before delegating to the wrapped state.
// Keys encode into a reused scratch buffer, so only the first sighting of
// each distinct value allocates.
type distinctState struct {
	inner aggState
	seen  map[string]bool
	buf   []byte
}

func (s *distinctState) add(v Value) {
	if v.IsNull() {
		s.inner.add(v) // inner decides whether NULL counts
		return
	}
	s.buf = appendValueKey(s.buf[:0], v)
	if s.seen[string(s.buf)] {
		return
	}
	s.seen[string(s.buf)] = true
	s.inner.add(v)
}

func (s *distinctState) result() Value { return s.inner.result() }
