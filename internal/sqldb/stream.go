package sqldb

import "sort"

// This file implements the streaming tail of a SELECT plan. Where the
// FROM/WHERE stages (exec.go) were already pull-based operators, the
// projection, DISTINCT, ORDER BY and LIMIT stages used to materialise the
// whole result up front. buildSelectPlan now composes them as pull
// iterators too, so rows flow one at a time from the scans to the caller:
// a LIMIT stops pulling when its window is full, DISTINCT deduplicates as
// it streams, and only the unavoidable pipeline breakers (sort,
// aggregation) buffer rows. EXISTS and scalar subqueries pull a single
// row from their subplan instead of materialising it (compile.go).
//
// Internally, when the statement has an ORDER BY, each projected row is
// extended with its eagerly evaluated sort keys (they may reference input
// columns that do not survive projection): project emits
// [out₀..outₙ₋₁, key₀..keyₘ₋₁], distinct deduplicates on the out prefix,
// and sort strips the keys as it emits. Without ORDER BY rows are exactly
// the output width everywhere.

// projectOp evaluates the select items (and ORDER BY keys) per input row.
type projectOp struct {
	child     operator
	outCols   []colInfo
	env       *evalEnv // row environment the items read from
	citems    []compiledExpr
	orderKeys []compiledExpr // nil without ORDER BY
	oenv      *evalEnv       // output-row environment the keys read from
	arena     rowArena
}

func (p *projectOp) columns() []colInfo { return p.outCols }
func (p *projectOp) reset()             { p.child.reset() }

func (p *projectOp) next() (Row, bool, error) {
	r, ok, err := p.child.next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.env.row = r
	nout := len(p.citems)
	out := p.arena.alloc(nout + len(p.orderKeys))
	for i, c := range p.citems {
		v, err := c()
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	if p.orderKeys != nil {
		p.oenv.row = out
		for i, k := range p.orderKeys {
			v, err := k()
			if err != nil {
				return nil, false, err
			}
			out[nout+i] = v
		}
	}
	return out, true, nil
}

// groupOp is the aggregation pipeline breaker: on first pull it drains its
// child into GROUP BY partitions (runAggregation), then streams one output
// row per group that passes HAVING.
type groupOp struct {
	stmt      *SelectStmt
	child     operator
	aggs      []*FuncCall
	actx      *aggCtx
	env       *evalEnv
	citems    []compiledExpr
	having    compiledExpr
	orderKeys []compiledExpr
	oenv      *evalEnv
	outCols   []colInfo
	db        *Database
	params    []Value
	outer     *evalEnv
	qc        *queryCtx

	built   bool
	groups  []*aggGroup
	aggVals []Value
	pos     int
	arena   rowArena
}

func (g *groupOp) columns() []colInfo { return g.outCols }
func (g *groupOp) reset() {
	g.built = false
	g.groups = nil
	g.pos = 0
	g.child.reset()
}

func (g *groupOp) next() (Row, bool, error) {
	if !g.built {
		groups, err := runAggregation(g.stmt, g.child, g.aggs, g.db, g.params, g.outer, g.qc)
		if err != nil {
			return nil, false, err
		}
		g.groups = groups
		g.aggVals = make([]Value, len(g.aggs))
		g.built = true
	}
	for g.pos < len(g.groups) {
		grp := g.groups[g.pos]
		g.pos++
		g.env.row = grp.repRow
		g.actx.groupKeys = grp.keys
		for i, st := range grp.states {
			g.aggVals[i] = st.result()
		}
		g.actx.aggVals = g.aggVals
		if g.having != nil {
			hv, err := g.having()
			if err != nil {
				return nil, false, err
			}
			if hv.IsNull() || !hv.AsBool() {
				continue
			}
		}
		nout := len(g.citems)
		out := g.arena.alloc(nout + len(g.orderKeys))
		for i, c := range g.citems {
			v, err := c()
			if err != nil {
				return nil, false, err
			}
			out[i] = v
		}
		if g.orderKeys != nil {
			g.oenv.row = out
			for i, k := range g.orderKeys {
				v, err := k()
				if err != nil {
					return nil, false, err
				}
				out[nout+i] = v
			}
		}
		return out, true, nil
	}
	return nil, false, nil
}

// distinctOp streams rows, dropping any whose first width values repeat
// an earlier row (first occurrence wins, as before).
type distinctOp struct {
	child operator
	width int
	seen  map[string]bool
	kb    []byte
}

func (d *distinctOp) columns() []colInfo { return d.child.columns() }
func (d *distinctOp) reset() {
	d.seen = nil
	d.child.reset()
}

func (d *distinctOp) next() (Row, bool, error) {
	if d.seen == nil {
		d.seen = make(map[string]bool)
	}
	for {
		r, ok, err := d.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		d.kb = appendRowKey(d.kb[:0], r[:d.width])
		if d.seen[string(d.kb)] {
			continue
		}
		d.seen[string(d.kb)] = true
		return r, true, nil
	}
}

// sortOp is the ORDER BY pipeline breaker: it drains its child on first
// pull, stable-sorts on the trailing key columns, and emits rows stripped
// back to the output width.
type sortOp struct {
	child   operator
	width   int
	orderBy []OrderItem

	built bool
	rows  []Row
	pos   int
}

func (s *sortOp) columns() []colInfo { return s.child.columns() }
func (s *sortOp) reset() {
	s.built = false
	s.rows = nil
	s.pos = 0
	s.child.reset()
}

func (s *sortOp) next() (Row, bool, error) {
	if !s.built {
		rows, err := drain(s.child)
		if err != nil {
			return nil, false, err
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for j, ob := range s.orderBy {
				c := rows[a][s.width+j].Compare(rows[b][s.width+j])
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		s.rows = rows
		s.built = true
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r[:s.width:s.width], true, nil
}

// limitOp applies the OFFSET/LIMIT window and — crucially — stops pulling
// from its child once the window is full, which is what lets a
// `SELECT ... LIMIT k` read only O(k) rows.
type limitOp struct {
	child   operator
	skip    int
	limit   int // -1 = unlimited
	skipped bool
	emitted int
	done    bool
}

func (l *limitOp) columns() []colInfo { return l.child.columns() }
func (l *limitOp) reset() {
	l.skipped = false
	l.emitted = 0
	l.done = false
	l.child.reset()
}

func (l *limitOp) next() (Row, bool, error) {
	if l.done {
		return nil, false, nil
	}
	if !l.skipped {
		for i := 0; i < l.skip; i++ {
			_, ok, err := l.child.next()
			if err != nil || !ok {
				l.done = true
				return nil, false, err
			}
		}
		l.skipped = true
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		l.done = true
		return nil, false, nil
	}
	r, ok, err := l.child.next()
	if err != nil || !ok {
		l.done = true
		return nil, false, err
	}
	l.emitted++
	return r, true, nil
}

// buildSelectPlan plans a SELECT end to end and returns the root operator
// plus the output schema. Pulling the root yields exactly the statement's
// result rows, one at a time.
func buildSelectPlan(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv, topLevel bool, qc *queryCtx) (operator, []colInfo, error) {
	src, where, err := buildFrom(stmt, db, params, outer, topLevel, qc)
	if err != nil {
		return nil, nil, err
	}
	if where != nil {
		f, err := newFilterOp(src, where, db, params, outer, qc)
		if err != nil {
			return nil, nil, err
		}
		src = f
	}

	aggregate := len(stmt.GroupBy) > 0
	if !aggregate {
		for _, it := range stmt.Items {
			if exprContainsAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
		if stmt.Having != nil && !aggregate {
			aggregate = true
		}
	}

	items, outCols, err := expandItems(stmt.Items, src.columns())
	if err != nil {
		return nil, nil, err
	}

	// LIMIT / OFFSET are constant expressions; fold them at plan time.
	start, limit := 0, -1
	if stmt.Offset != nil {
		ov, err := evalConst(stmt.Offset, db, params, qc)
		if err != nil {
			return nil, nil, err
		}
		if start = int(ov.AsInt()); start < 0 {
			start = 0
		}
	}
	if stmt.Limit != nil {
		lv, err := evalConst(stmt.Limit, db, params, qc)
		if err != nil {
			return nil, nil, err
		}
		limit = int(lv.AsInt())
	}

	// env is the row environment the projection (and HAVING, and the input
	// side of ORDER BY) evaluates in. Under aggregation its row is the
	// group's representative row and env.agg carries the group context.
	env := newEvalEnv(src.columns(), db, params, outer, qc)

	hasOrder := len(stmt.OrderBy) > 0
	var oenv *evalEnv
	var orderKeys []compiledExpr
	compileOrder := func() error {
		if !hasOrder {
			return nil
		}
		// ORDER BY resolves output aliases first, then input columns.
		oenv = newEvalEnv(outCols, db, params, env, qc)
		oenv.agg = env.agg
		orderKeys = make([]compiledExpr, len(stmt.OrderBy))
		for i, ob := range stmt.OrderBy {
			k, err := compileOrderKey(ob.Expr, oenv, len(outCols))
			if err != nil {
				return err
			}
			orderKeys[i] = k
		}
		return nil
	}

	var root operator
	if aggregate {
		// Collect the aggregate calls the query references anywhere.
		var aggs []*FuncCall
		for _, it := range items {
			aggs = collectAggregates(it.Expr, aggs)
		}
		if stmt.Having != nil {
			aggs = collectAggregates(stmt.Having, aggs)
		}
		for _, ob := range stmt.OrderBy {
			aggs = collectAggregates(ob.Expr, aggs)
		}
		groupStrs := make([]string, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			groupStrs[i] = g.String()
		}
		actx := &aggCtx{groupStrs: groupStrs, aggs: aggs}
		env.agg = actx

		citems := make([]compiledExpr, len(items))
		for i, it := range items {
			if citems[i], err = compileExpr(it.Expr, env); err != nil {
				return nil, nil, err
			}
		}
		var having compiledExpr
		if stmt.Having != nil {
			if having, err = compileExpr(stmt.Having, env); err != nil {
				return nil, nil, err
			}
		}
		if err := compileOrder(); err != nil {
			return nil, nil, err
		}
		root = &groupOp{
			stmt: stmt, child: src, aggs: aggs, actx: actx, env: env,
			citems: citems, having: having, orderKeys: orderKeys, oenv: oenv,
			outCols: outCols, db: db, params: params, outer: outer, qc: qc,
		}
	} else {
		citems := make([]compiledExpr, len(items))
		for i, it := range items {
			if citems[i], err = compileExpr(it.Expr, env); err != nil {
				return nil, nil, err
			}
		}
		if err := compileOrder(); err != nil {
			return nil, nil, err
		}
		root = &projectOp{
			child: src, outCols: outCols, env: env,
			citems: citems, orderKeys: orderKeys, oenv: oenv,
		}
	}

	if stmt.Distinct {
		root = &distinctOp{child: root, width: len(outCols)}
	}
	if hasOrder {
		root = &sortOp{child: root, width: len(outCols), orderBy: stmt.OrderBy}
	}
	if start > 0 || limit >= 0 {
		root = &limitOp{child: root, skip: start, limit: limit}
	}
	return root, outCols, nil
}
