package sqldb

import (
	"sort"
	"strings"
)

// This file implements the streaming tail of a SELECT plan. Where the
// FROM/WHERE stages (exec.go) were already pull-based operators, the
// projection, DISTINCT, ORDER BY and LIMIT stages used to materialise the
// whole result up front. buildSelectPlan now composes them as pull
// iterators too, so rows flow one at a time from the scans to the caller:
// a LIMIT stops pulling when its window is full, DISTINCT deduplicates as
// it streams, and only the unavoidable pipeline breakers (sort,
// aggregation) buffer rows. EXISTS and scalar subqueries pull a single
// row from their subplan instead of materialising it (compile.go).
//
// Internally, when the statement has an ORDER BY, each projected row is
// extended with its eagerly evaluated sort keys (they may reference input
// columns that do not survive projection): project emits
// [out₀..outₙ₋₁, key₀..keyₘ₋₁], distinct deduplicates on the out prefix,
// and sort strips the keys as it emits. Without ORDER BY rows are exactly
// the output width everywhere.

// projectOp evaluates the select items (and ORDER BY keys) per input row.
type projectOp struct {
	child     operator
	outCols   []colInfo
	items     []SelectItem // retained for EXPLAIN (subplans in projections)
	env       *evalEnv     // row environment the items read from
	citems    []compiledExpr
	orderKeys []compiledExpr // nil without ORDER BY
	oenv      *evalEnv       // output-row environment the keys read from
	arena     rowArena
}

func (p *projectOp) columns() []colInfo { return p.outCols }
func (p *projectOp) reset()             { p.child.reset() }

func (p *projectOp) next() (Row, bool, error) {
	r, ok, err := p.child.next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.env.row = r
	nout := len(p.citems)
	out := p.arena.alloc(nout + len(p.orderKeys))
	for i, c := range p.citems {
		v, err := c()
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	if p.orderKeys != nil {
		p.oenv.row = out
		for i, k := range p.orderKeys {
			v, err := k()
			if err != nil {
				return nil, false, err
			}
			out[nout+i] = v
		}
	}
	return out, true, nil
}

// groupOp is the aggregation pipeline breaker: on first pull it drains its
// child into GROUP BY partitions (runAggregation), then streams one output
// row per group that passes HAVING.
type groupOp struct {
	stmt      *SelectStmt
	child     operator
	aggs      []*FuncCall
	actx      *aggCtx
	env       *evalEnv
	citems    []compiledExpr
	having    compiledExpr
	orderKeys []compiledExpr
	oenv      *evalEnv
	outCols   []colInfo
	db        *Database
	params    []Value
	outer     *evalEnv
	qc        *queryCtx

	built   bool
	groups  []*aggGroup
	aggVals []Value
	pos     int
	arena   rowArena
}

func (g *groupOp) columns() []colInfo { return g.outCols }
func (g *groupOp) reset() {
	g.built = false
	g.groups = nil
	g.pos = 0
	g.child.reset()
}

func (g *groupOp) next() (Row, bool, error) {
	if !g.built {
		groups, err := runAggregation(g.stmt, g.child, g.aggs, g.db, g.params, g.outer, g.qc)
		if err != nil {
			return nil, false, err
		}
		g.groups = groups
		g.aggVals = make([]Value, len(g.aggs))
		g.built = true
	}
	for g.pos < len(g.groups) {
		grp := g.groups[g.pos]
		g.pos++
		g.env.row = grp.repRow
		g.actx.groupKeys = grp.keys
		for i, st := range grp.states {
			g.aggVals[i] = st.result()
		}
		g.actx.aggVals = g.aggVals
		if g.having != nil {
			hv, err := g.having()
			if err != nil {
				return nil, false, err
			}
			if hv.IsNull() || !hv.AsBool() {
				continue
			}
		}
		nout := len(g.citems)
		out := g.arena.alloc(nout + len(g.orderKeys))
		for i, c := range g.citems {
			v, err := c()
			if err != nil {
				return nil, false, err
			}
			out[i] = v
		}
		if g.orderKeys != nil {
			g.oenv.row = out
			for i, k := range g.orderKeys {
				v, err := k()
				if err != nil {
					return nil, false, err
				}
				out[nout+i] = v
			}
		}
		return out, true, nil
	}
	return nil, false, nil
}

// distinctOp streams rows, dropping any whose first width values repeat
// an earlier row (first occurrence wins, as before).
type distinctOp struct {
	child operator
	width int
	seen  map[string]bool
	kb    []byte
}

func (d *distinctOp) columns() []colInfo { return d.child.columns() }
func (d *distinctOp) reset() {
	d.seen = nil
	d.child.reset()
}

func (d *distinctOp) next() (Row, bool, error) {
	if d.seen == nil {
		d.seen = make(map[string]bool)
	}
	for {
		r, ok, err := d.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		d.kb = appendRowKey(d.kb[:0], r[:d.width])
		if d.seen[string(d.kb)] {
			continue
		}
		d.seen[string(d.kb)] = true
		return r, true, nil
	}
}

// sortOp is the ORDER BY pipeline breaker: it drains its child on first
// pull, stable-sorts on the trailing key columns, and emits rows stripped
// back to the output width. When the statement has a LIMIT (and the
// planner could not serve the order from an index), topK bounds the sort:
// only the first topK rows of the sorted order are retained in a max-heap
// while draining — O(n log k) with k live rows instead of sorting and
// slicing the whole input.
type sortOp struct {
	child   operator
	width   int
	orderBy []OrderItem
	topK    int // -1 = keep everything

	built   bool
	drained uint64 // input rows pulled (per-operator EXPLAIN ANALYZE)
	rows    []Row
	pos     int
}

func (s *sortOp) columns() []colInfo { return s.child.columns() }
func (s *sortOp) reset() {
	s.built = false
	s.rows = nil
	s.pos = 0
	s.child.reset()
}

func (s *sortOp) next() (Row, bool, error) {
	if !s.built {
		var rows []Row
		var err error
		if s.topK >= 0 {
			rows, err = s.drainTopK()
		} else {
			rows, err = drain(s.child)
			if err == nil {
				s.drained += uint64(len(rows))
				sort.SliceStable(rows, func(a, b int) bool {
					return s.keyLess(rows[a], rows[b]) < 0
				})
			}
		}
		if err != nil {
			return nil, false, err
		}
		s.rows = rows
		s.built = true
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r[:s.width:s.width], true, nil
}

// keyLess compares two extended rows on the trailing sort keys: <0, 0, >0.
func (s *sortOp) keyLess(a, b Row) int {
	for j, ob := range s.orderBy {
		c := a[s.width+j].Compare(b[s.width+j])
		if c != 0 {
			if ob.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// topkRow pairs a row with its arrival ordinal so ties break exactly as
// the stable sort would: earlier input first.
type topkRow struct {
	row Row
	seq int
}

// drainTopK pulls the whole child but retains only the first topK rows of
// the sorted order, using a max-heap ordered by (sort keys, arrival).
// The child is drained fully even when topK is 0 so that execution
// errors surface exactly as they would from a full sort.
func (s *sortOp) drainTopK() ([]Row, error) {
	// after reports whether a sorts after b in the output order; it is a
	// total order thanks to the unique arrival ordinal, so the heap's
	// "worst" root is well defined.
	after := func(a, b topkRow) bool {
		if c := s.keyLess(a.row, b.row); c != 0 {
			return c > 0
		}
		return a.seq > b.seq
	}
	var h []topkRow // max-heap: root sorts after every other retained row
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !after(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && after(h[l], h[big]) {
				big = l
			}
			if r < len(h) && after(h[r], h[big]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	seq := 0
	for {
		r, ok, err := s.child.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e := topkRow{row: r, seq: seq}
		seq++
		s.drained++
		if s.topK == 0 {
			continue
		}
		if len(h) < s.topK {
			h = append(h, e)
			siftUp(len(h) - 1)
			continue
		}
		if after(h[0], e) {
			h[0] = e
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return after(h[b], h[a]) })
	rows := make([]Row, len(h))
	for i, e := range h {
		rows[i] = e.row
	}
	return rows, nil
}

// limitOp applies the OFFSET/LIMIT window and — crucially — stops pulling
// from its child once the window is full, which is what lets a
// `SELECT ... LIMIT k` read only O(k) rows.
type limitOp struct {
	child   operator
	skip    int
	limit   int // -1 = unlimited
	skipped bool
	emitted int
	done    bool
}

func (l *limitOp) columns() []colInfo { return l.child.columns() }
func (l *limitOp) reset() {
	l.skipped = false
	l.emitted = 0
	l.done = false
	l.child.reset()
}

func (l *limitOp) next() (Row, bool, error) {
	if l.done {
		return nil, false, nil
	}
	if !l.skipped {
		for i := 0; i < l.skip; i++ {
			_, ok, err := l.child.next()
			if err != nil || !ok {
				l.done = true
				return nil, false, err
			}
		}
		l.skipped = true
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		l.done = true
		return nil, false, nil
	}
	r, ok, err := l.child.next()
	if err != nil || !ok {
		l.done = true
		return nil, false, err
	}
	l.emitted++
	return r, true, nil
}

// buildSelectPlan plans a SELECT end to end and returns the root operator
// plus the output schema. Pulling the root yields exactly the statement's
// result rows, one at a time.
func buildSelectPlan(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv, topLevel bool, qc *queryCtx) (operator, []colInfo, error) {
	src, where, err := buildFrom(stmt, db, params, outer, topLevel, qc)
	if err != nil {
		return nil, nil, err
	}
	if where != nil {
		f, err := newFilterOp(src, where, db, params, outer, qc)
		if err != nil {
			return nil, nil, err
		}
		src = f
	}

	aggregate := len(stmt.GroupBy) > 0
	if !aggregate {
		for _, it := range stmt.Items {
			if exprContainsAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
		if stmt.Having != nil && !aggregate {
			aggregate = true
		}
	}

	items, outCols, err := expandItems(stmt.Items, src.columns())
	if err != nil {
		return nil, nil, err
	}

	// Order-aware access path: when the single ORDER BY key is an indexed
	// column of the statement's one base table, replace the scan with an
	// ordered index scan and drop the sort — the index's ordered view
	// yields exactly what the stable sort would, so this is safe for
	// subqueries and truncated results too, and it is what makes
	// `ORDER BY col LIMIT k` read O(k) rows.
	orderElided := false
	if !aggregate && len(stmt.OrderBy) == 1 && len(stmt.Joins) == 0 {
		src, orderElided = tryOrderedScan(stmt, items, src, qc)
	}

	// LIMIT / OFFSET are constant expressions; fold them at plan time.
	start, limit := 0, -1
	if stmt.Offset != nil {
		ov, err := evalConst(stmt.Offset, db, params, qc)
		if err != nil {
			return nil, nil, err
		}
		if start = int(ov.AsInt()); start < 0 {
			start = 0
		}
	}
	if stmt.Limit != nil {
		lv, err := evalConst(stmt.Limit, db, params, qc)
		if err != nil {
			return nil, nil, err
		}
		limit = int(lv.AsInt())
	}

	// env is the row environment the projection (and HAVING, and the input
	// side of ORDER BY) evaluates in. Under aggregation its row is the
	// group's representative row and env.agg carries the group context.
	env := newEvalEnv(src.columns(), db, params, outer, qc)

	// needSort: an ORDER BY the index order does not already satisfy.
	// When the order is elided the projected rows carry no key extension
	// and no sortOp is stacked; rows arrive from the scan already sorted.
	needSort := len(stmt.OrderBy) > 0 && !orderElided
	var oenv *evalEnv
	var orderKeys []compiledExpr
	compileOrder := func() error {
		if !needSort {
			return nil
		}
		// ORDER BY resolves output aliases first, then input columns.
		oenv = newEvalEnv(outCols, db, params, env, qc)
		oenv.agg = env.agg
		orderKeys = make([]compiledExpr, len(stmt.OrderBy))
		for i, ob := range stmt.OrderBy {
			k, err := compileOrderKey(ob.Expr, oenv, len(outCols))
			if err != nil {
				return err
			}
			orderKeys[i] = k
		}
		return nil
	}

	var root operator
	if aggregate {
		// Collect the aggregate calls the query references anywhere.
		var aggs []*FuncCall
		for _, it := range items {
			aggs = collectAggregates(it.Expr, aggs)
		}
		if stmt.Having != nil {
			aggs = collectAggregates(stmt.Having, aggs)
		}
		for _, ob := range stmt.OrderBy {
			aggs = collectAggregates(ob.Expr, aggs)
		}
		groupStrs := make([]string, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			groupStrs[i] = g.String()
		}
		actx := &aggCtx{groupStrs: groupStrs, aggs: aggs}
		env.agg = actx

		citems := make([]compiledExpr, len(items))
		for i, it := range items {
			if citems[i], err = compileExpr(it.Expr, env); err != nil {
				return nil, nil, err
			}
		}
		var having compiledExpr
		if stmt.Having != nil {
			if having, err = compileExpr(stmt.Having, env); err != nil {
				return nil, nil, err
			}
		}
		if err := compileOrder(); err != nil {
			return nil, nil, err
		}
		root = &groupOp{
			stmt: stmt, child: src, aggs: aggs, actx: actx, env: env,
			citems: citems, having: having, orderKeys: orderKeys, oenv: oenv,
			outCols: outCols, db: db, params: params, outer: outer, qc: qc,
		}
	} else {
		citems := make([]compiledExpr, len(items))
		for i, it := range items {
			if citems[i], err = compileExpr(it.Expr, env); err != nil {
				return nil, nil, err
			}
		}
		if err := compileOrder(); err != nil {
			return nil, nil, err
		}
		root = &projectOp{
			child: src, outCols: outCols, items: items, env: env,
			citems: citems, orderKeys: orderKeys, oenv: oenv,
		}
	}

	if stmt.Distinct {
		root = &distinctOp{child: root, width: len(outCols)}
	}
	if needSort {
		topK := -1
		if limit >= 0 {
			topK = start + limit // the limit window is all the sort must keep
		}
		root = &sortOp{child: root, width: len(outCols), orderBy: stmt.OrderBy, topK: topK}
	}
	if start > 0 || limit >= 0 {
		root = &limitOp{child: root, skip: start, limit: limit}
	}
	return root, outCols, nil
}

// tryOrderedScan decides whether the statement's single ORDER BY key can
// be served by streaming the base table in index order. The source chain
// must bottom out in a scanOp (filters pass order through); the key must
// be a bare or correctly-qualified reference to an indexed column of that
// scan; and — because ORDER BY resolves output names first — a bare key
// that collides with an output column is only safe when that output
// column is the very same table column. If the scan carries a range
// restriction it must be on the same column, and becomes the ordered
// scan's bounds. On success the scan is replaced in place and the
// (possibly new) chain root plus true are returned.
func tryOrderedScan(stmt *SelectStmt, items []SelectItem, src operator, qc *queryCtx) (operator, bool) {
	// Find the scan under any stack of filters.
	var parent *filterOp
	cur := src
	for {
		if f, ok := cur.(*filterOp); ok {
			parent, cur = f, f.child
			continue
		}
		break
	}
	sc, ok := cur.(*scanOp)
	if !ok || sc.ids != nil {
		return src, false
	}
	ob := stmt.OrderBy[0]
	cr, ok := ob.Expr.(*ColumnRef)
	if !ok {
		return src, false
	}
	idx := scanIndexFor(sc, cr)
	if idx == nil {
		return src, false
	}
	if sc.rangeIdx != nil && sc.rangeIdx != idx {
		return src, false
	}
	if stmt.Distinct {
		// DISTINCT keeps each group's first-arriving row, and the sort
		// orders groups by that representative's key. Index order only
		// reproduces this when the key is part of the deduplicated
		// output row (then all of a group's rows share it); a key
		// outside the output would make group order depend on which
		// representative arrived first — i.e. on the access path.
		keyInOutput := false
		for _, it := range items {
			if c, ok := it.Expr.(*ColumnRef); ok && strings.EqualFold(c.Column, cr.Column) &&
				(c.Table == "" || strings.EqualFold(c.Table, sc.qual)) {
				keyInOutput = true
				break
			}
		}
		if !keyInOutput {
			return src, false
		}
	}
	if cr.Table == "" {
		// A bare ORDER BY name resolves against the output columns first
		// (compileOrderKey); index order only matches when every output
		// column of that name is the same plain table column.
		matches := 0
		for _, it := range items {
			name := it.Alias
			if name == "" {
				if c, ok := it.Expr.(*ColumnRef); ok {
					name = c.Column
				} else {
					name = it.Expr.String()
				}
			}
			if !strings.EqualFold(name, cr.Column) {
				continue
			}
			matches++
			c, ok := it.Expr.(*ColumnRef)
			if !ok || !strings.EqualFold(c.Column, cr.Column) ||
				(c.Table != "" && !strings.EqualFold(c.Table, sc.qual)) {
				return src, false
			}
		}
		if matches > 1 {
			// Ambiguous output reference: keep the sort path so the
			// resolution error (or tie-breaking) behaves as before.
			return src, false
		}
	}
	oss := &ordScanOp{
		table: sc.table, idx: idx, qual: sc.qual, cols: sc.cols,
		desc: ob.Desc, qc: qc,
	}
	if sc.rangeIdx == idx {
		oss.spec = sc.spec
	}
	if parent == nil {
		return oss, true
	}
	parent.child = oss
	return src, true
}
