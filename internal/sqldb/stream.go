package sqldb

import (
	"sort"
	"strings"
)

// This file implements the streaming tail of a SELECT plan. Where the
// FROM/WHERE stages (exec.go) were already pull-based operators, the
// projection, DISTINCT, ORDER BY and LIMIT stages used to materialise the
// whole result up front. buildSelectPlan now composes them as pull
// iterators too, so rows flow one at a time from the scans to the caller:
// a LIMIT stops pulling when its window is full, DISTINCT deduplicates as
// it streams, and only the unavoidable pipeline breakers (sort,
// aggregation) buffer rows. EXISTS and scalar subqueries pull a single
// row from their subplan instead of materialising it (compile.go).
//
// Internally, when the statement has an ORDER BY, each projected row is
// extended with its eagerly evaluated sort keys (they may reference input
// columns that do not survive projection): project emits
// [out₀..outₙ₋₁, key₀..keyₘ₋₁], distinct deduplicates on the out prefix,
// and sort strips the keys as it emits. Without ORDER BY rows are exactly
// the output width everywhere.

// projectOp evaluates the select items (and ORDER BY keys) per input row.
type projectOp struct {
	child     operator
	outCols   []colInfo
	items     []SelectItem // retained for EXPLAIN (subplans in projections)
	env       *evalEnv     // row environment the items read from
	citems    []compiledExpr
	orderKeys []compiledExpr // nil without ORDER BY
	oenv      *evalEnv       // output-row environment the keys read from
	vec       *vecProjPlan   // non-nil: items read from the scan's batches
	arena     rowArena
}

func (p *projectOp) columns() []colInfo { return p.outCols }
func (p *projectOp) reset()             { p.child.reset() }

func (p *projectOp) next() (Row, bool, error) {
	if p.vec != nil {
		// Vectorized projection: pull through the child (so EXPLAIN
		// ANALYZE wrappers keep counting), then read the emitted row's
		// item values from the per-batch kernel results by ordinal.
		_, ok, err := p.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		cols := p.vec.itemCols()
		i := p.vec.src.lastIdx
		out := p.arena.alloc(len(cols))
		for j, c := range cols {
			out[j] = c.at(i)
		}
		return out, true, nil
	}
	r, ok, err := p.child.next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.env.row = r
	nout := len(p.citems)
	out := p.arena.alloc(nout + len(p.orderKeys))
	for i, c := range p.citems {
		v, err := c()
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	if p.orderKeys != nil {
		p.oenv.row = out
		for i, k := range p.orderKeys {
			v, err := k()
			if err != nil {
				return nil, false, err
			}
			out[nout+i] = v
		}
	}
	return out, true, nil
}

// groupOp is the aggregation pipeline breaker: on first pull it drains its
// child into GROUP BY partitions (runAggregation), then streams one output
// row per group that passes HAVING.
type groupOp struct {
	stmt      *SelectStmt
	child     operator
	aggs      []*FuncCall
	actx      *aggCtx
	env       *evalEnv
	citems    []compiledExpr
	having    compiledExpr
	orderKeys []compiledExpr
	oenv      *evalEnv
	outCols   []colInfo
	db        *Database
	params    []Value
	outer     *evalEnv
	qc        *queryCtx
	par       *parAggPlan // non-nil: fused parallel partial aggregation
	vec       *vecAggPlan // non-nil: vectorized scan+filter+aggregate drain

	built   bool
	groups  []*aggGroup
	aggVals []Value
	pos     int
	arena   rowArena
}

func (g *groupOp) columns() []colInfo { return g.outCols }
func (g *groupOp) reset() {
	g.built = false
	g.groups = nil
	g.pos = 0
	g.child.reset()
}

func (g *groupOp) next() (Row, bool, error) {
	if !g.built {
		var groups []*aggGroup
		var err error
		switch {
		case g.par != nil:
			groups, err = runAggregationParallel(g.stmt, g.par, g.aggs, g.db, g.params, g.qc)
		case g.vec != nil:
			groups, err = runAggregationVec(g.stmt, g.vec, g.child, g.aggs)
		default:
			groups, err = runAggregation(g.stmt, g.child, g.aggs, g.db, g.params, g.outer, g.qc)
		}
		if err != nil {
			return nil, false, err
		}
		g.groups = groups
		g.aggVals = make([]Value, len(g.aggs))
		g.built = true
	}
	for g.pos < len(g.groups) {
		grp := g.groups[g.pos]
		g.pos++
		g.env.row = grp.repRow
		g.actx.groupKeys = grp.keys
		for i, st := range grp.states {
			g.aggVals[i] = st.result()
		}
		g.actx.aggVals = g.aggVals
		if g.having != nil {
			hv, err := g.having()
			if err != nil {
				return nil, false, err
			}
			if hv.IsNull() || !hv.AsBool() {
				continue
			}
		}
		nout := len(g.citems)
		out := g.arena.alloc(nout + len(g.orderKeys))
		for i, c := range g.citems {
			v, err := c()
			if err != nil {
				return nil, false, err
			}
			out[i] = v
		}
		if g.orderKeys != nil {
			g.oenv.row = out
			for i, k := range g.orderKeys {
				v, err := k()
				if err != nil {
					return nil, false, err
				}
				out[nout+i] = v
			}
		}
		return out, true, nil
	}
	return nil, false, nil
}

// distinctOp streams rows, dropping any whose first width values repeat
// an earlier row (first occurrence wins, as before).
type distinctOp struct {
	child operator
	width int
	seen  map[string]bool
	kb    []byte
}

func (d *distinctOp) columns() []colInfo { return d.child.columns() }
func (d *distinctOp) reset() {
	d.seen = nil
	d.child.reset()
}

func (d *distinctOp) next() (Row, bool, error) {
	if d.seen == nil {
		d.seen = make(map[string]bool)
	}
	for {
		r, ok, err := d.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		d.kb = appendRowKey(d.kb[:0], r[:d.width])
		if d.seen[string(d.kb)] {
			continue
		}
		d.seen[string(d.kb)] = true
		return r, true, nil
	}
}

// sortOp is the ORDER BY pipeline breaker: it drains its child on first
// pull, stable-sorts on the trailing key columns, and emits rows stripped
// back to the output width. When the statement has a LIMIT (and the
// planner could not serve the order from an index), topK bounds the sort:
// only the first topK rows of the sorted order are retained in a max-heap
// while draining — O(n log k) with k live rows instead of sorting and
// slicing the whole input.
type sortOp struct {
	child   operator
	width   int
	orderBy []OrderItem
	topK    int // -1 = keep everything
	// presorted is the count of leading sort keys the input order already
	// satisfies (an elided index order). When positive the operator is no
	// longer a full pipeline breaker: it streams runs of rows equal on
	// those keys, stable-sorting each run on the remaining keys — memory is
	// O(largest run) and a LIMIT above it stops pulling after O(k) rows
	// plus one run, which is what keeps ORDER BY a, b LIMIT k cheap when
	// only `a` is indexed.
	presorted int

	built   bool
	drained uint64 // input rows pulled (per-operator EXPLAIN ANALYZE)
	rows    []Row
	pos     int

	// Grouped (presorted) streaming state.
	run     []Row
	runPos  int
	pendRow Row
	pendOK  bool
	eof     bool
}

func (s *sortOp) columns() []colInfo { return s.child.columns() }
func (s *sortOp) reset() {
	s.built = false
	s.rows = nil
	s.pos = 0
	s.run = nil
	s.runPos = 0
	s.pendOK = false
	s.eof = false
	s.child.reset()
}

func (s *sortOp) next() (Row, bool, error) {
	if s.presorted > 0 {
		return s.nextGrouped()
	}
	if !s.built {
		var rows []Row
		var err error
		if s.topK >= 0 {
			rows, err = s.drainTopK()
		} else {
			rows, err = drain(s.child)
			if err == nil {
				s.drained += uint64(len(rows))
				sort.SliceStable(rows, func(a, b int) bool {
					return s.keyLess(rows[a], rows[b]) < 0
				})
			}
		}
		if err != nil {
			return nil, false, err
		}
		s.rows = rows
		s.built = true
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r[:s.width:s.width], true, nil
}

// nextGrouped is the presorted streaming mode: buffer one run of rows
// equal on the leading presorted keys, stable-sort it on the remaining
// keys, emit, repeat. Within a run the input arrives in exactly the order
// the full stable sort would visit it (the elided index order ties on
// heap order), so each sorted run — and therefore the whole stream — is
// bit-identical to the full sort's output.
func (s *sortOp) nextGrouped() (Row, bool, error) {
	for {
		if s.runPos < len(s.run) {
			r := s.run[s.runPos]
			s.runPos++
			return r[:s.width:s.width], true, nil
		}
		if s.eof {
			return nil, false, nil
		}
		s.run = s.run[:0]
		s.runPos = 0
		if s.pendOK {
			s.run = append(s.run, s.pendRow)
			s.pendOK = false
		}
		for {
			r, ok, err := s.child.next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				s.eof = true
				break
			}
			s.drained++
			if len(s.run) > 0 && !s.sameRun(s.run[0], r) {
				s.pendRow, s.pendOK = r, true
				break
			}
			s.run = append(s.run, r)
		}
		if len(s.run) == 0 {
			return nil, false, nil
		}
		sort.SliceStable(s.run, func(a, b int) bool {
			return s.keyLessFrom(s.run[a], s.run[b], s.presorted) < 0
		})
	}
}

// sameRun reports whether two extended rows agree on the leading
// presorted keys.
func (s *sortOp) sameRun(a, b Row) bool {
	for j := 0; j < s.presorted; j++ {
		if a[s.width+j].Compare(b[s.width+j]) != 0 {
			return false
		}
	}
	return true
}

// keyLess compares two extended rows on the trailing sort keys: <0, 0, >0.
func (s *sortOp) keyLess(a, b Row) int { return s.keyLessFrom(a, b, 0) }

// keyLessFrom compares on the sort keys starting at key index from.
func (s *sortOp) keyLessFrom(a, b Row, from int) int {
	for j := from; j < len(s.orderBy); j++ {
		c := a[s.width+j].Compare(b[s.width+j])
		if c != 0 {
			if s.orderBy[j].Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// topkRow pairs a row with its arrival ordinal so ties break exactly as
// the stable sort would: earlier input first.
type topkRow struct {
	row Row
	seq int
}

// drainTopK pulls the whole child but retains only the first topK rows of
// the sorted order, using a max-heap ordered by (sort keys, arrival).
// The child is drained fully even when topK is 0 so that execution
// errors surface exactly as they would from a full sort.
func (s *sortOp) drainTopK() ([]Row, error) {
	// after reports whether a sorts after b in the output order; it is a
	// total order thanks to the unique arrival ordinal, so the heap's
	// "worst" root is well defined.
	after := func(a, b topkRow) bool {
		if c := s.keyLess(a.row, b.row); c != 0 {
			return c > 0
		}
		return a.seq > b.seq
	}
	var h []topkRow // max-heap: root sorts after every other retained row
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !after(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && after(h[l], h[big]) {
				big = l
			}
			if r < len(h) && after(h[r], h[big]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	seq := 0
	for {
		r, ok, err := s.child.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e := topkRow{row: r, seq: seq}
		seq++
		s.drained++
		if s.topK == 0 {
			continue
		}
		if len(h) < s.topK {
			h = append(h, e)
			siftUp(len(h) - 1)
			continue
		}
		if after(h[0], e) {
			h[0] = e
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return after(h[b], h[a]) })
	rows := make([]Row, len(h))
	for i, e := range h {
		rows[i] = e.row
	}
	return rows, nil
}

// limitOp applies the OFFSET/LIMIT window and — crucially — stops pulling
// from its child once the window is full, which is what lets a
// `SELECT ... LIMIT k` read only O(k) rows.
type limitOp struct {
	child   operator
	skip    int
	limit   int // -1 = unlimited
	skipped bool
	emitted int
	done    bool
}

func (l *limitOp) columns() []colInfo { return l.child.columns() }
func (l *limitOp) reset() {
	l.skipped = false
	l.emitted = 0
	l.done = false
	l.child.reset()
}

func (l *limitOp) next() (Row, bool, error) {
	if l.done {
		return nil, false, nil
	}
	if !l.skipped {
		for i := 0; i < l.skip; i++ {
			_, ok, err := l.child.next()
			if err != nil || !ok {
				l.done = true
				return nil, false, err
			}
		}
		l.skipped = true
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		l.done = true
		return nil, false, nil
	}
	r, ok, err := l.child.next()
	if err != nil || !ok {
		l.done = true
		return nil, false, err
	}
	l.emitted++
	return r, true, nil
}

// buildSelectPlan plans a SELECT end to end and returns the root operator
// plus the output schema. Pulling the root yields exactly the statement's
// result rows, one at a time.
func buildSelectPlan(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv, topLevel bool, qc *queryCtx) (operator, []colInfo, error) {
	src, where, err := buildFrom(stmt, db, params, outer, topLevel, qc)
	if err != nil {
		return nil, nil, err
	}
	if where != nil {
		f, err := newFilterOp(src, where, db, params, outer, qc)
		if err != nil {
			return nil, nil, err
		}
		src = f
	}

	aggregate := len(stmt.GroupBy) > 0
	if !aggregate {
		for _, it := range stmt.Items {
			if exprContainsAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
		if stmt.Having != nil && !aggregate {
			aggregate = true
		}
	}

	items, outCols, err := expandItems(stmt.Items, src.columns())
	if err != nil {
		return nil, nil, err
	}

	// Order-aware access path: when the leading ORDER BY key is an indexed
	// column of the statement's one base table, replace the scan with an
	// ordered index scan — the index's ordered view yields exactly what the
	// stable sort would, so this is safe for subqueries and truncated
	// results too, and it is what makes `ORDER BY col LIMIT k` read O(k)
	// rows. A single key drops the sort entirely; trailing keys keep a
	// streaming tie-sort (sortOp.presorted) that only buffers runs of
	// equal leading-key rows. Multi-key elision is skipped under DISTINCT:
	// dedup keeps first-arriving representatives, and index order changes
	// which row arrives first.
	orderElided := false
	if !aggregate && len(stmt.OrderBy) >= 1 && len(stmt.Joins) == 0 &&
		(len(stmt.OrderBy) == 1 || !stmt.Distinct) {
		src, orderElided = tryOrderedScan(stmt, items, src, qc)
	}

	// Morsel-parallel scan (parallel.go): top-level, single-table,
	// order-preserving-by-gather paths only. Elided index orders stay
	// serial (their streaming is the point), and a bare LIMIT window
	// without ORDER BY stays serial so the scan-ahead workers never read
	// rows the window will not emit.
	if topLevel && outer == nil && !aggregate && !orderElided && len(stmt.Joins) == 0 &&
		!((stmt.Limit != nil || stmt.Offset != nil) && len(stmt.OrderBy) == 0) {
		src = tryParallelScan(src, db, params, qc)
	}

	// Vectorized batch execution (vecops.go): claims unrestricted
	// seq-scan chains the parallel scan did not take (a parScanOp no
	// longer bottoms out in a scanOp, so the hook passes it through).
	// The compiler is kept so projection items can be vectorized below.
	var vcomp *vecCompiler
	if !aggregate && !orderElided {
		src, vcomp = tryVectorize(src, db, params, qc)
	}

	// LIMIT / OFFSET are constant expressions; fold them at plan time.
	start, limit := 0, -1
	if stmt.Offset != nil {
		ov, err := evalConst(stmt.Offset, db, params, qc)
		if err != nil {
			return nil, nil, err
		}
		if start = int(ov.AsInt()); start < 0 {
			start = 0
		}
	}
	if stmt.Limit != nil {
		lv, err := evalConst(stmt.Limit, db, params, qc)
		if err != nil {
			return nil, nil, err
		}
		limit = int(lv.AsInt())
	}

	// env is the row environment the projection (and HAVING, and the input
	// side of ORDER BY) evaluates in. Under aggregation its row is the
	// group's representative row and env.agg carries the group context.
	env := newEvalEnv(src.columns(), db, params, outer, qc)

	// needSort: an ORDER BY the index order does not already satisfy. A
	// fully elided single-key order stacks no sortOp at all (rows carry no
	// key extension); an elided leading key with trailing keys keeps a
	// streaming tie-sort over all the keys.
	needSort := len(stmt.OrderBy) > 0 && (!orderElided || len(stmt.OrderBy) > 1)
	var oenv *evalEnv
	var orderKeys []compiledExpr
	compileOrder := func() error {
		if !needSort {
			return nil
		}
		// ORDER BY resolves output aliases first, then input columns.
		oenv = newEvalEnv(outCols, db, params, env, qc)
		oenv.agg = env.agg
		orderKeys = make([]compiledExpr, len(stmt.OrderBy))
		for i, ob := range stmt.OrderBy {
			k, err := compileOrderKey(ob.Expr, oenv, len(outCols))
			if err != nil {
				return err
			}
			orderKeys[i] = k
		}
		return nil
	}

	var root operator
	if aggregate {
		// Collect the aggregate calls the query references anywhere.
		var aggs []*FuncCall
		for _, it := range items {
			aggs = collectAggregates(it.Expr, aggs)
		}
		if stmt.Having != nil {
			aggs = collectAggregates(stmt.Having, aggs)
		}
		for _, ob := range stmt.OrderBy {
			aggs = collectAggregates(ob.Expr, aggs)
		}
		groupStrs := make([]string, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			groupStrs[i] = g.String()
		}
		actx := &aggCtx{groupStrs: groupStrs, aggs: aggs}
		env.agg = actx

		citems := make([]compiledExpr, len(items))
		for i, it := range items {
			if citems[i], err = compileExpr(it.Expr, env); err != nil {
				return nil, nil, err
			}
		}
		var having compiledExpr
		if stmt.Having != nil {
			if having, err = compileExpr(stmt.Having, env); err != nil {
				return nil, nil, err
			}
		}
		if err := compileOrder(); err != nil {
			return nil, nil, err
		}
		// Fused parallel partial aggregation, when the input is a large
		// single-table scan and every aggregate merges exactly.
		var par *parAggPlan
		if topLevel && outer == nil && len(stmt.Joins) == 0 {
			par = tryParallelAgg(stmt, src, aggs, db, qc)
			if par == nil {
				// Partial states did not merge (e.g. DISTINCT aggregates),
				// but when the consumer is provably order-insensitive the
				// scan itself can still parallelize, gathered in morsel
				// completion order.
				src = tryParallelScanUnordered(stmt, items, src, aggs, db, params, qc)
			}
		}
		var vagg *vecAggPlan
		if par == nil {
			var avc *vecCompiler
			src, avc = tryVectorize(src, db, params, qc)
			if avc != nil {
				vagg = tryVectorizeAgg(src.(*vecScanOp), avc, stmt, aggs, qc)
			}
		}
		root = &groupOp{
			stmt: stmt, child: src, aggs: aggs, actx: actx, env: env,
			citems: citems, having: having, orderKeys: orderKeys, oenv: oenv,
			outCols: outCols, db: db, params: params, outer: outer, qc: qc,
			par: par, vec: vagg,
		}
	} else {
		citems := make([]compiledExpr, len(items))
		for i, it := range items {
			if citems[i], err = compileExpr(it.Expr, env); err != nil {
				return nil, nil, err
			}
		}
		if err := compileOrder(); err != nil {
			return nil, nil, err
		}
		// Fully vectorized projection: only without ORDER BY keys (key
		// evaluation reads the projected output row) and when every item
		// compiles to a kernel.
		var vproj *vecProjPlan
		if vcomp != nil && orderKeys == nil {
			if vsc, ok := src.(*vecScanOp); ok {
				vproj = tryVectorizeProj(vsc, vcomp, items, qc)
			}
		}
		root = &projectOp{
			child: src, outCols: outCols, items: items, env: env,
			citems: citems, orderKeys: orderKeys, oenv: oenv, vec: vproj,
		}
	}

	if stmt.Distinct {
		root = &distinctOp{child: root, width: len(outCols)}
	}
	if needSort {
		presorted := 0
		if orderElided {
			presorted = 1
		}
		topK := -1
		if limit >= 0 && presorted == 0 {
			// The limit window is all a full sort must keep. The grouped
			// tie-sort ignores topK: it already streams, and the limitOp
			// above stops pulling once the window fills.
			topK = start + limit
		}
		root = &sortOp{child: root, width: len(outCols), orderBy: stmt.OrderBy, topK: topK, presorted: presorted}
	}
	if start > 0 || limit >= 0 {
		root = &limitOp{child: root, skip: start, limit: limit}
	}
	return root, outCols, nil
}

// tryOrderedScan decides whether the statement's single ORDER BY key can
// be served by streaming the base table in index order. The source chain
// must bottom out in a scanOp (filters pass order through); the key must
// be a bare or correctly-qualified reference to an indexed column of that
// scan; and — because ORDER BY resolves output names first — a bare key
// that collides with an output column is only safe when that output
// column is the very same table column. If the scan carries a range
// restriction it must be on the same column, and becomes the ordered
// scan's bounds. On success the scan is replaced in place and the
// (possibly new) chain root plus true are returned.
func tryOrderedScan(stmt *SelectStmt, items []SelectItem, src operator, qc *queryCtx) (operator, bool) {
	// Find the scan under any stack of filters.
	var parent *filterOp
	cur := src
	for {
		if f, ok := cur.(*filterOp); ok {
			parent, cur = f, f.child
			continue
		}
		break
	}
	sc, ok := cur.(*scanOp)
	if !ok || sc.ids != nil {
		return src, false
	}
	ob := stmt.OrderBy[0]
	cr, ok := ob.Expr.(*ColumnRef)
	if !ok {
		return src, false
	}
	idx := scanIndexFor(sc, cr)
	if idx == nil {
		return src, false
	}
	if sc.rangeIdx != nil && sc.rangeIdx != idx {
		return src, false
	}
	if stmt.Distinct {
		// DISTINCT keeps each group's first-arriving row, and the sort
		// orders groups by that representative's key. Index order only
		// reproduces this when the key is part of the deduplicated
		// output row (then all of a group's rows share it); a key
		// outside the output would make group order depend on which
		// representative arrived first — i.e. on the access path.
		keyInOutput := false
		for _, it := range items {
			if c, ok := it.Expr.(*ColumnRef); ok && strings.EqualFold(c.Column, cr.Column) &&
				(c.Table == "" || strings.EqualFold(c.Table, sc.qual)) {
				keyInOutput = true
				break
			}
		}
		if !keyInOutput {
			return src, false
		}
	}
	if cr.Table == "" {
		// A bare ORDER BY name resolves against the output columns first
		// (compileOrderKey); index order only matches when every output
		// column of that name is the same plain table column.
		matches := 0
		for _, it := range items {
			name := it.Alias
			if name == "" {
				if c, ok := it.Expr.(*ColumnRef); ok {
					name = c.Column
				} else {
					name = it.Expr.String()
				}
			}
			if !strings.EqualFold(name, cr.Column) {
				continue
			}
			matches++
			c, ok := it.Expr.(*ColumnRef)
			if !ok || !strings.EqualFold(c.Column, cr.Column) ||
				(c.Table != "" && !strings.EqualFold(c.Table, sc.qual)) {
				return src, false
			}
		}
		if matches > 1 {
			// Ambiguous output reference: keep the sort path so the
			// resolution error (or tie-breaking) behaves as before.
			return src, false
		}
	}
	oss := &ordScanOp{
		table: sc.table, idx: idx, qual: sc.qual, cols: sc.cols,
		desc: ob.Desc, qc: qc,
	}
	if sc.rangeIdx == idx {
		oss.spec = sc.spec
	}
	if parent == nil {
		return oss, true
	}
	parent.child = oss
	return src, true
}
