package sqldb

import (
	"math"
	"strings"
)

// colInfo names one column of an intermediate result: an optional table
// qualifier plus the column (or alias) name.
type colInfo struct {
	qual string
	name string
}

func (c colInfo) String() string {
	if c.qual != "" {
		return c.qual + "." + c.name
	}
	return c.name
}

// evalEnv carries everything expression evaluation needs: the current row
// and its schema, bound parameters, the database (for subqueries), the
// enclosing row environment (for correlated subqueries), and — under
// aggregation — the per-group context compiled expressions read from.
type evalEnv struct {
	cols   []colInfo
	lookup map[string]int // "qual.col" and bare "col" -> ordinal; ambiguous = -2
	row    Row
	params []Value
	db     *Database
	outer  *evalEnv
	// agg is set on environments evaluating the post-aggregation phase
	// (projection, HAVING, ORDER BY of an aggregate query); see compile.go.
	agg *aggCtx
	// qc is the executing statement's queryCtx (cancellation + counters),
	// carried here so compiled subquery closures can hand it to their
	// subplans. nil for internal evaluations.
	qc *queryCtx
}

// newEvalEnv builds an environment over the given schema. A nil qc
// inherits the outer environment's, so correlated subquery scopes share
// their statement's context.
func newEvalEnv(cols []colInfo, db *Database, params []Value, outer *evalEnv, qc *queryCtx) *evalEnv {
	if qc == nil && outer != nil {
		qc = outer.qc
	}
	env := &evalEnv{cols: cols, db: db, params: params, outer: outer, qc: qc}
	env.lookup = buildLookup(cols)
	return env
}

func buildLookup(cols []colInfo) map[string]int {
	m := make(map[string]int, len(cols)*2)
	for i, c := range cols {
		bare := strings.ToLower(c.name)
		if prev, ok := m[bare]; ok && prev != i {
			m[bare] = -2 // ambiguous
		} else {
			m[bare] = i
		}
		if c.qual != "" {
			q := strings.ToLower(c.qual) + "." + bare
			if prev, ok := m[q]; ok && prev != i {
				m[q] = -2
			} else {
				m[q] = i
			}
		}
	}
	return m
}

// resolve finds the ordinal for a column reference, walking outer scopes for
// correlated subqueries. The second result reports which env owned it.
func (env *evalEnv) resolve(ref *ColumnRef) (int, *evalEnv, error) {
	key := strings.ToLower(ref.Column)
	if ref.Table != "" {
		key = strings.ToLower(ref.Table) + "." + key
	}
	for e := env; e != nil; e = e.outer {
		if i, ok := e.lookup[key]; ok {
			if i == -2 {
				return 0, nil, errf(ErrAmbiguous, "sql: ambiguous column name: %s", ref)
			}
			return i, e, nil
		}
	}
	return 0, nil, errf(ErrNoColumn, "sql: no such column: %s", ref)
}

// evalExpr evaluates e in env with SQL three-valued-logic semantics. It is
// the interpreted twin of compileExpr: SELECT hot paths run compiled
// closures, while DML statements and constant folding interpret the AST
// directly (they evaluate each expression a handful of times at most).
// Aggregates are only handled by the compiled path.
func evalExpr(e Expr, env *evalEnv) (Value, error) {
	switch t := e.(type) {
	case *Literal:
		return t.Val, nil
	case *Param:
		if t.Index >= len(env.params) {
			return Null, errf(ErrParams, "sql: statement expects at least %d parameters, got %d", t.Index+1, len(env.params))
		}
		return env.params[t.Index], nil
	case *ColumnRef:
		i, owner, err := env.resolve(t)
		if err != nil {
			return Null, err
		}
		if i >= len(owner.row) {
			return Null, errf(ErrInternal, "sql: internal: column %s out of range", t)
		}
		return owner.row[i], nil
	case *BinaryOp:
		return evalBinary(t, env)
	case *UnaryOp:
		return evalUnary(t, env)
	case *IsNull:
		v, err := evalExpr(t.Expr, env)
		if err != nil {
			return Null, err
		}
		return Bool(v.IsNull() != t.Not), nil
	case *InList:
		return evalIn(t, env)
	case *Between:
		return evalBetween(t, env)
	case *FuncCall:
		return evalFunc(t, env)
	case *CaseExpr:
		return evalCase(t, env)
	case *CastExpr:
		v, err := evalExpr(t.Expr, env)
		if err != nil {
			return Null, err
		}
		return castValue(v, t.Type), nil
	case *Subquery:
		rows, _, err := execSubquery(t.Select, env)
		if err != nil {
			return Null, err
		}
		if len(rows) == 0 || len(rows[0]) == 0 {
			return Null, nil
		}
		return rows[0][0], nil
	case *ExistsExpr:
		rows, _, err := execSubquery(t.Select, env)
		if err != nil {
			return Null, err
		}
		return Bool((len(rows) > 0) != t.Not), nil
	case *Star:
		return Null, errf(ErrMisuse, "sql: '*' is not valid in this context")
	default:
		return Null, errf(ErrMisuse, "sql: cannot evaluate %T", e)
	}
}

func evalBinary(b *BinaryOp, env *evalEnv) (Value, error) {
	switch b.Op {
	case "AND":
		l, err := evalExpr(b.Left, env)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && !l.AsBool() {
			return Bool(false), nil
		}
		r, err := evalExpr(b.Right, env)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && !r.AsBool() {
			return Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(true), nil
	case "OR":
		l, err := evalExpr(b.Left, env)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && l.AsBool() {
			return Bool(true), nil
		}
		r, err := evalExpr(b.Right, env)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && r.AsBool() {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(false), nil
	}
	l, err := evalExpr(b.Left, env)
	if err != nil {
		return Null, err
	}
	r, err := evalExpr(b.Right, env)
	if err != nil {
		return Null, err
	}
	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c := l.Compare(r)
		switch b.Op {
		case "=":
			return Bool(c == 0), nil
		case "!=":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(likeMatch(r.AsText(), l.AsText())), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Text(l.AsText() + r.AsText()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(b.Op, l, r)
	default:
		return Null, errf(ErrMisuse, "sql: unknown operator %q", b.Op)
	}
}

// evalArith implements SQLite-style arithmetic: integer op integer stays
// integral (with truncating division); any REAL operand promotes to REAL;
// division or modulo by zero yields NULL.
func evalArith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}
	bothInt := l.Kind() == KindInt && r.Kind() == KindInt
	if bothInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return Int(a + b), nil
		case "-":
			return Int(a - b), nil
		case "*":
			return Int(a * b), nil
		case "/":
			if b == 0 {
				return Null, nil
			}
			return Int(a / b), nil
		case "%":
			if b == 0 {
				return Null, nil
			}
			return Int(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return Float(a + b), nil
	case "-":
		return Float(a - b), nil
	case "*":
		return Float(a * b), nil
	case "/":
		if b == 0 {
			return Null, nil
		}
		return Float(a / b), nil
	case "%":
		if b == 0 {
			return Null, nil
		}
		return Float(math.Mod(a, b)), nil
	}
	return Null, errf(ErrInternal, "sql: unknown arithmetic operator %q", op)
}

func evalUnary(u *UnaryOp, env *evalEnv) (Value, error) {
	v, err := evalExpr(u.Expr, env)
	if err != nil {
		return Null, err
	}
	switch u.Op {
	case "-":
		if v.IsNull() {
			return Null, nil
		}
		if v.Kind() == KindInt {
			return Int(-v.AsInt()), nil
		}
		return Float(-v.AsFloat()), nil
	case "NOT":
		if v.IsNull() {
			return Null, nil
		}
		return Bool(!v.AsBool()), nil
	default:
		return Null, errf(ErrMisuse, "sql: unknown unary operator %q", u.Op)
	}
}

func evalIn(in *InList, env *evalEnv) (Value, error) {
	needle, err := evalExpr(in.Expr, env)
	if err != nil {
		return Null, err
	}
	if needle.IsNull() {
		return Null, nil
	}
	var hayrows []Value
	if in.Sub != nil {
		rows, _, err := execSubquery(in.Sub, env)
		if err != nil {
			return Null, err
		}
		for _, r := range rows {
			if len(r) > 0 {
				hayrows = append(hayrows, r[0])
			}
		}
	} else {
		for _, e := range in.List {
			v, err := evalExpr(e, env)
			if err != nil {
				return Null, err
			}
			hayrows = append(hayrows, v)
		}
	}
	sawNull := false
	for _, h := range hayrows {
		if h.IsNull() {
			sawNull = true
			continue
		}
		if needle.Compare(h) == 0 {
			return Bool(!in.Not), nil
		}
	}
	if sawNull {
		return Null, nil
	}
	return Bool(in.Not), nil
}

func evalBetween(bt *Between, env *evalEnv) (Value, error) {
	v, err := evalExpr(bt.Expr, env)
	if err != nil {
		return Null, err
	}
	lo, err := evalExpr(bt.Lo, env)
	if err != nil {
		return Null, err
	}
	hi, err := evalExpr(bt.Hi, env)
	if err != nil {
		return Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return Null, nil
	}
	in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
	return Bool(in != bt.Not), nil
}

func evalCase(c *CaseExpr, env *evalEnv) (Value, error) {
	if c.Operand != nil {
		op, err := evalExpr(c.Operand, env)
		if err != nil {
			return Null, err
		}
		for _, w := range c.Whens {
			wv, err := evalExpr(w.When, env)
			if err != nil {
				return Null, err
			}
			if !op.IsNull() && !wv.IsNull() && op.Compare(wv) == 0 {
				return evalExpr(w.Then, env)
			}
		}
	} else {
		for _, w := range c.Whens {
			wv, err := evalExpr(w.When, env)
			if err != nil {
				return Null, err
			}
			if !wv.IsNull() && wv.AsBool() {
				return evalExpr(w.Then, env)
			}
		}
	}
	if c.Else != nil {
		return evalExpr(c.Else, env)
	}
	return Null, nil
}

// castValue implements CAST with SQLite-like conversions.
func castValue(v Value, typ string) Value {
	if v.IsNull() {
		return Null
	}
	switch affinityKind(typ) {
	case KindInt:
		return Int(v.AsInt())
	case KindFloat:
		return Float(v.AsFloat())
	case KindBool:
		return Bool(v.AsBool())
	default:
		return Text(v.AsText())
	}
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' any single
// character, comparison is ASCII case-insensitive (SQLite default).
func likeMatch(pattern, s string) bool {
	return likeRec(strings.ToLower(pattern), strings.ToLower(s))
}

func likeRec(p, s string) bool {
	for {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			// Collapse consecutive % and try all split points.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if p == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if s == "" || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
}

// exprContainsAggregate reports whether e contains a call to an aggregate
// function (COUNT, SUM, AVG, MIN, MAX, GROUP_CONCAT, TOTAL) at any depth,
// without descending into subqueries (their aggregates are their own).
func exprContainsAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) bool {
		if fc, ok := x.(*FuncCall); ok && isAggregateName(fc.Name) {
			found = true
			return false
		}
		switch x.(type) {
		case *Subquery, *ExistsExpr:
			return false
		}
		return !found
	})
	return found
}

// collectAggregates appends every aggregate FuncCall in e (excluding
// subqueries) to out, returning the extended slice.
func collectAggregates(e Expr, out []*FuncCall) []*FuncCall {
	walkExpr(e, func(x Expr) bool {
		if fc, ok := x.(*FuncCall); ok && isAggregateName(fc.Name) {
			out = append(out, fc)
			return false // aggregate args cannot nest aggregates
		}
		switch x.(type) {
		case *Subquery, *ExistsExpr:
			return false
		}
		return true
	})
	return out
}

// walkExpr visits e and its children in depth-first order. The visitor
// returns false to prune the subtree.
func walkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch t := e.(type) {
	case *BinaryOp:
		walkExpr(t.Left, visit)
		walkExpr(t.Right, visit)
	case *UnaryOp:
		walkExpr(t.Expr, visit)
	case *IsNull:
		walkExpr(t.Expr, visit)
	case *InList:
		walkExpr(t.Expr, visit)
		for _, x := range t.List {
			walkExpr(x, visit)
		}
	case *Between:
		walkExpr(t.Expr, visit)
		walkExpr(t.Lo, visit)
		walkExpr(t.Hi, visit)
	case *FuncCall:
		for _, a := range t.Args {
			walkExpr(a, visit)
		}
	case *CaseExpr:
		walkExpr(t.Operand, visit)
		for _, w := range t.Whens {
			walkExpr(w.When, visit)
			walkExpr(w.Then, visit)
		}
		walkExpr(t.Else, visit)
	case *CastExpr:
		walkExpr(t.Expr, visit)
	}
}
