package sqldb

import "context"

// This file is the engine's surface for the wire-protocol server
// (internal/server/pgwire). A wire session parses each statement once
// (Parse message or simple-query split), dispatches BEGIN/COMMIT/ROLLBACK
// onto its own *Txn handle, and runs everything else through the two
// entry points below — so extended-protocol portals never re-parse and
// never touch the database's SQL-level session transaction (which belongs
// to single-connection embedded use, not to N concurrent sockets). The
// probes at the bottom are what the wire test layer pins leak-freedom
// with: after every disconnect, at every protocol state, live snapshots,
// open cursors, and parallel workers must all return to zero.

// ExecStmtTx executes one already-parsed non-SELECT statement inside tx;
// a nil tx runs it as an autocommit statement. BEGIN inside a live tx and
// COMMIT/ROLLBACK routed here behave exactly as they do through
// Txn.Exec; callers owning their own transaction state machine (the wire
// session) intercept those statement kinds before calling this.
func (db *Database) ExecStmtTx(ctx context.Context, stmt Statement, tx *Txn, params ...any) (int, error) {
	qc := newQueryCtx(ctx, db)
	defer qc.flush()
	return db.execStmt(qc, stmt, bindParams(params), tx)
}

// QueryRowsStmt opens a streaming cursor over an already-parsed SELECT
// inside tx (nil = autocommit read with its own fresh snapshot). The
// cursor holds its own snapshot reference; Close releases it — a wire
// portal maps one-to-one onto this cursor and must Close it on every
// exit path (Execute completion, portal close, Sync teardown, session
// death).
func (db *Database) QueryRowsStmt(ctx context.Context, sel *SelectStmt, tx *Txn, params ...any) (*Rows, error) {
	return db.queryRows(ctx, sel, bindParams(params), tx)
}

// LiveSnapshots reports the number of registered MVCC snapshots currently
// pinning the vacuum horizon. An idle database with no open cursors or
// transactions reports zero; the wire disconnect matrix asserts it
// returns to zero after killing connections at every protocol state.
func (db *Database) LiveSnapshots() int { return db.tm.liveSnapshots() }

// LiveParallelWorkers reports engine-wide live parallel-scan worker
// goroutines (zero when no query is mid-flight). Like LiveSnapshots it
// exists for leak assertions: workers must be stopped and joined before a
// cursor's snapshot is released, no matter how the connection died.
func LiveParallelWorkers() int64 { return parallelWorkersActive.Load() }

// NumParams reports the number of positional ? parameters stmt references
// (max index + 1), descending into subqueries and derived tables. The
// wire server answers Describe's ParameterDescription with it and uses it
// to bind NULL placeholders when planning a result-shape probe.
func NumParams(stmt Statement) int {
	n := 0
	var visitExpr func(e Expr)
	var visitSel func(s *SelectStmt)
	visitExpr = func(e Expr) {
		walkExpr(e, func(x Expr) bool {
			switch t := x.(type) {
			case *Param:
				if t.Index+1 > n {
					n = t.Index + 1
				}
			case *Subquery:
				visitSel(t.Select)
			case *ExistsExpr:
				visitSel(t.Select)
			case *InList:
				if t.Sub != nil {
					visitSel(t.Sub)
				}
			}
			return true
		})
	}
	visitSel = func(s *SelectStmt) {
		if s == nil {
			return
		}
		for _, it := range s.Items {
			visitExpr(it.Expr)
		}
		if s.From != nil {
			visitSel(s.From.Sub)
		}
		for _, j := range s.Joins {
			visitSel(j.Table.Sub)
			visitExpr(j.On)
		}
		visitExpr(s.Where)
		for _, g := range s.GroupBy {
			visitExpr(g)
		}
		visitExpr(s.Having)
		for _, o := range s.OrderBy {
			visitExpr(o.Expr)
		}
		visitExpr(s.Limit)
		visitExpr(s.Offset)
	}
	switch t := stmt.(type) {
	case *SelectStmt:
		visitSel(t)
	case *InsertStmt:
		for _, row := range t.Rows {
			for _, e := range row {
				visitExpr(e)
			}
		}
		visitSel(t.Select)
	case *UpdateStmt:
		for _, sc := range t.Set {
			visitExpr(sc.Expr)
		}
		visitExpr(t.Where)
	case *DeleteStmt:
		visitExpr(t.Where)
	}
	return n
}
