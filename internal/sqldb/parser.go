package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with its byte offset in the source.
type ParseError struct {
	Pos int
	Msg string
	Src string
}

func (e *ParseError) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Src); i++ {
		if e.Src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("sql: parse error at line %d col %d: %s", line, col, e.Msg)
}

// Parse parses a single SQL statement. Trailing semicolons are permitted.
// Errors are *Error values with code ErrParse wrapping a *ParseError that
// carries the source position.
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, wrapErr(ErrParse, &ParseError{Pos: 0, Msg: fmt.Sprintf("expected exactly one statement, got %d", len(stmts)), Src: src})
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script into statements. Errors are
// *Error values with code ErrParse wrapping the positioned *ParseError.
func ParseAll(src string) ([]Statement, error) {
	stmts, err := parseAll(src)
	if err != nil {
		return nil, wrapErr(ErrParse, err)
	}
	return stmts, nil
}

func parseAll(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmts []Statement
	for {
		for p.peek().typ == tokOp && p.peek().text == ";" {
			p.next()
		}
		if p.peek().typ == tokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.peek().typ != tokEOF {
			if _, err := p.expectOp(";"); err != nil {
				return nil, err
			}
		}
	}
	if len(stmts) == 0 {
		return nil, &ParseError{Pos: 0, Msg: "empty statement", Src: src}
	}
	return stmts, nil
}

// parser is a recursive-descent parser over a token slice.
type parser struct {
	toks   []token
	pos    int
	src    string
	params int // number of ? placeholders seen so far
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(t token, format string, args ...any) error {
	return &ParseError{Pos: t.pos, Msg: fmt.Sprintf(format, args...), Src: p.src}
}

// acceptKeyword consumes the keyword if present and reports whether it did.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().typ == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf(p.peek(), "expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.peek().typ == tokOp && p.peek().text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) (token, error) {
	t := p.peek()
	if t.typ == tokOp && t.text == op {
		return p.next(), nil
	}
	return t, p.errorf(t, "expected %q, found %q", op, t.text)
}

// expectIdent consumes an identifier (or non-reserved keyword used as a
// name, which we do not allow — keep the grammar strict).
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.typ == tokIdent {
		p.next()
		return t.text, nil
	}
	return "", p.errorf(t, "expected identifier, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.typ != tokKeyword {
		return nil, p.errorf(t, "expected statement keyword, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "DROP":
		return p.parseDrop()
	case "BEGIN":
		return p.parseBegin()
	case "COMMIT":
		return p.parseCommit()
	case "ROLLBACK":
		return p.parseRollback()
	default:
		return nil, p.errorf(t, "unsupported statement %q", t.text)
	}
}

// ---------------------------------------------------------------------------
// Transaction control

func (p *parser) parseBegin() (*BeginStmt, error) {
	if err := p.expectKeyword("BEGIN"); err != nil {
		return nil, err
	}
	p.acceptKeyword("TRANSACTION")
	return &BeginStmt{}, nil
}

func (p *parser) parseCommit() (*CommitStmt, error) {
	if err := p.expectKeyword("COMMIT"); err != nil {
		return nil, err
	}
	p.acceptKeyword("TRANSACTION")
	return &CommitStmt{}, nil
}

func (p *parser) parseRollback() (*RollbackStmt, error) {
	if err := p.expectKeyword("ROLLBACK"); err != nil {
		return nil, err
	}
	p.acceptKeyword("TRANSACTION")
	return &RollbackStmt{}, nil
}

// ---------------------------------------------------------------------------
// SELECT

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = &tr
		for {
			var kind JoinKind
			switch {
			case p.peek().typ == tokKeyword && p.peek().text == "JOIN":
				p.next()
				kind = JoinInner
			case p.peek().typ == tokKeyword && p.peek().text == "INNER":
				p.next()
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = JoinInner
			case p.peek().typ == tokKeyword && p.peek().text == "LEFT":
				p.next()
				p.acceptKeyword("OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = JoinLeft
			case p.peek().typ == tokKeyword && p.peek().text == "CROSS":
				p.next()
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = JoinCross
			case p.peek().typ == tokOp && p.peek().text == ",":
				p.next()
				kind = JoinCross
			default:
				kind = 255
			}
			if kind == 255 {
				break
			}
			jt, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			jc := JoinClause{Kind: kind, Table: jt}
			if kind != JoinCross {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				jc.On = on
			}
			s.Joins = append(s.Joins, jc)
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
		// Support both `LIMIT n OFFSET m` and `LIMIT m, n` (SQLite).
		if p.acceptOp(",") {
			off := s.Limit
			lim, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Limit, s.Offset = lim, off
		}
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// `*` or `tbl.*`
	if p.peek().typ == tokOp && p.peek().text == "*" {
		p.next()
		return SelectItem{Expr: &Star{}}, nil
	}
	if p.peek().typ == tokIdent && p.peek2().typ == tokOp && p.peek2().text == "." {
		// Lookahead for tbl.* without consuming on failure.
		save := p.pos
		tbl := p.next().text
		p.next() // '.'
		if p.peek().typ == tokOp && p.peek().text == "*" {
			p.next()
			return SelectItem{Expr: &Star{Table: tbl}}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.parseAliasName()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().typ == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

// parseAliasName accepts identifiers and string literals as alias names.
func (p *parser) parseAliasName() (string, error) {
	t := p.peek()
	if t.typ == tokIdent || t.typ == tokString {
		p.next()
		return t.text, nil
	}
	return "", p.errorf(t, "expected alias name, found %q", t.text)
}

func (p *parser) parseTableRef() (TableRef, error) {
	var tr TableRef
	if p.peek().typ == tokOp && p.peek().text == "(" {
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return tr, err
		}
		if _, err := p.expectOp(")"); err != nil {
			return tr, err
		}
		tr.Sub = sub
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return tr, err
		}
		tr.Name = name
	}
	if p.acceptKeyword("AS") {
		a, err := p.parseAliasName()
		if err != nil {
			return tr, err
		}
		tr.Alias = a
	} else if p.peek().typ == tokIdent {
		tr.Alias = p.next().text
	}
	if tr.Sub != nil && tr.Alias == "" {
		return tr, p.errorf(p.peek(), "derived table requires an alias")
	}
	return tr, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
//
// Precedence (low to high): OR, AND, NOT, comparison/IS/IN/LIKE/BETWEEN,
// additive (+ - ||), multiplicative (* / %), unary minus, primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.typ == tokOp && (t.text == "=" || t.text == "!=" || t.text == "<>" ||
			t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">="):
			p.next()
			op := t.text
			if op == "<>" {
				op = "!="
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryOp{Op: op, Left: left, Right: right}
		case t.typ == tokKeyword && t.text == "IS":
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNull{Expr: left, Not: not}
		case t.typ == tokKeyword && t.text == "LIKE":
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryOp{Op: "LIKE", Left: left, Right: right}
		case t.typ == tokKeyword && t.text == "IN":
			p.next()
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case t.typ == tokKeyword && t.text == "BETWEEN":
			p.next()
			bt, err := p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
			left = bt
		case t.typ == tokKeyword && t.text == "NOT":
			// `x NOT IN`, `x NOT LIKE`, `x NOT BETWEEN`
			nx := p.peek2()
			if nx.typ != tokKeyword || (nx.text != "IN" && nx.text != "LIKE" && nx.text != "BETWEEN") {
				return left, nil
			}
			p.next() // NOT
			switch p.next().text {
			case "IN":
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case "LIKE":
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &UnaryOp{Op: "NOT", Expr: &BinaryOp{Op: "LIKE", Left: left, Right: right}}
			case "BETWEEN":
				bt, err := p.parseBetweenTail(left, true)
				if err != nil {
					return nil, err
				}
				left = bt
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseInTail(left Expr, not bool) (Expr, error) {
	if _, err := p.expectOp("("); err != nil {
		return nil, err
	}
	in := &InList{Expr: left, Not: not}
	if p.peek().typ == tokKeyword && p.peek().text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		in.Sub = sub
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if _, err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseBetweenTail(left Expr, not bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Between{Expr: left, Lo: lo, Hi: hi, Not: not}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.typ == tokOp && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryOp{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.typ == tokOp && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryOp{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.typ == tokOp && t.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals so that -3 prints as -3, not -(3).
		if lit, ok := e.(*Literal); ok && lit.Val.IsNumeric() {
			if lit.Val.Kind() == KindInt {
				return &Literal{Val: Int(-lit.Val.AsInt())}, nil
			}
			return &Literal{Val: Float(-lit.Val.AsFloat())}, nil
		}
		return &UnaryOp{Op: "-", Expr: e}, nil
	}
	if t.typ == tokOp && t.text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.typ {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf(t, "invalid number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf(t, "invalid number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		return &Literal{Val: Int(n)}, nil
	case tokString:
		p.next()
		return &Literal{Val: Text(t.text)}, nil
	case tokParam:
		p.next()
		e := &Param{Index: p.params}
		p.params++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "EXISTS":
			p.next()
			if _, err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Select: sub}, nil
		case "NOT":
			p.next()
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &UnaryOp{Op: "NOT", Expr: e}, nil
		}
		return nil, p.errorf(t, "unexpected keyword %q in expression", t.text)
	case tokIdent:
		// Function call or column reference.
		if p.peek2().typ == tokOp && p.peek2().text == "(" {
			return p.parseFuncCall()
		}
		p.next()
		ref := &ColumnRef{Column: t.text, index: -1}
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Table = t.text
			ref.Column = col
		}
		return ref, nil
	case tokOp:
		if t.text == "(" {
			p.next()
			if p.peek().typ == tokKeyword && p.peek().text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if _, err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &Subquery{Select: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	// A bare `*` is NOT an expression operand: select-item stars and
	// COUNT(*) are recognised by their own productions, so accepting one
	// here would let shapes like `+*` parse into trees that cannot
	// round-trip through String (found by FuzzParse).
	return nil, p.errorf(t, "unexpected token %q in expression", t.text)
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := strings.ToUpper(p.next().text)
	if _, err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.peek().typ == tokOp && p.peek().text == "*" {
		p.next()
		fc.Star = true
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptOp(")") {
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if !p.acceptOp(",") {
			break
		}
	}
	if _, err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !(p.peek().typ == tokKeyword && (p.peek().text == "WHEN" || p.peek().text == "END")) {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{When: w, Then: th})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf(p.peek(), "CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if _, err := p.expectOp("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	ty, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Expr: e, Type: ty}, nil
}

// parseTypeName accepts a bare type identifier like INTEGER or TEXT, or a
// parameterised one like VARCHAR(255) (parameters are ignored).
func (p *parser) parseTypeName() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.acceptOp("(") {
		for p.peek().typ == tokNumber || (p.peek().typ == tokOp && p.peek().text == ",") {
			p.next()
		}
		if _, err := p.expectOp(")"); err != nil {
			return "", err
		}
	}
	return strings.ToUpper(name), nil
}

// ---------------------------------------------------------------------------
// DDL / DML

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, p.errorf(p.peek(), "UNIQUE is not valid for CREATE TABLE")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.errorf(p.peek(), "expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	stmt := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if _, err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		// Allow trailing table constraints to be skipped gracefully:
		// PRIMARY KEY (...), UNIQUE (...), FOREIGN KEY ... are tolerated
		// and ignored (benchmark schemas are denormalised).
		if p.peek().typ == tokKeyword && (p.peek().text == "PRIMARY" || p.peek().text == "UNIQUE") {
			if err := p.skipTableConstraint(); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if _, err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(stmt.Columns) == 0 {
		return nil, p.errorf(p.peek(), "table %q has no columns", stmt.Name)
	}
	return stmt, nil
}

func (p *parser) skipTableConstraint() error {
	// Consume tokens until the matching close paren of the constraint's
	// column list, leaving the trailing ',' or ')' for the caller.
	depth := 0
	for {
		t := p.peek()
		if t.typ == tokEOF {
			return p.errorf(t, "unterminated table constraint")
		}
		if t.typ == tokOp {
			switch t.text {
			case "(":
				depth++
			case ")":
				if depth == 0 {
					return nil
				}
				depth--
			case ",":
				if depth == 0 {
					return nil
				}
			}
		}
		p.next()
	}
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.expectIdent()
	if err != nil {
		return col, err
	}
	col.Name = name
	ty, err := p.parseTypeName()
	if err != nil {
		return col, err
	}
	col.Type = ty
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.acceptKeyword("NULL"):
			// explicit nullable; no-op
		case p.acceptKeyword("UNIQUE"):
			col.Unique = true
		default:
			return col, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectOp("("); err != nil {
		return nil, err
	}
	column, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: column, Unique: unique}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().typ == tokKeyword && p.peek().text == "SELECT" {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel
		return stmt, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}
