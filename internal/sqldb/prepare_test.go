package sqldb

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestPrepareBasics(t *testing.T) {
	db := testDB(t)
	stmt, err := db.Prepare("SELECT title FROM movies WHERE genre = ? ORDER BY revenue DESC")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.SQL() == "" {
		t.Error("SQL() should echo the statement text")
	}
	res, err := stmt.Query("Romance")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"Titanic"}, {"The Notebook"}, {"Quiet Nights"}}
	got := rowsToStrings(res.Rows)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("prepared query = %v, want %v", got, want)
	}
	// Different parameters, same plan.
	res, err = stmt.Query("Crime")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "Heat" {
		t.Errorf("re-execution with new params = %v", rowsToStrings(res.Rows))
	}

	if _, err := db.Prepare("INSERT INTO movies VALUES (9, 'x', 'y', 1, 2000)"); err == nil {
		t.Error("Prepare of non-SELECT must fail")
	} else if !strings.Contains(err.Error(), "Prepare requires") {
		t.Errorf("Prepare error should name Prepare, got %q", err)
	}
	if _, err := db.Prepare("SELECT FROM WHERE"); err == nil {
		t.Error("Prepare of invalid SQL must fail")
	}
}

func TestPlanCacheReusesParses(t *testing.T) {
	db := testDB(t)
	const sql = "SELECT COUNT(*) FROM movies"
	s1, err := db.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if s1.sel != s2.sel {
		t.Error("repeated Prepare should reuse the cached parse")
	}
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	if got := db.plans.len(); got != 1 {
		t.Errorf("plan cache holds %d entries, want 1", got)
	}
	// Executions through the cache must stay correct after DDL touching
	// unrelated tables (the cache stores parses, not bound plans).
	db.MustExec("CREATE TABLE extra (x INTEGER)")
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 5 {
		t.Errorf("cached query returned %v, want 5", res.Rows[0][0])
	}
}

func TestPlanCacheEvicts(t *testing.T) {
	db := testDB(t)
	for i := 0; i < planCacheCap+10; i++ {
		if _, err := db.Query(fmt.Sprintf("SELECT %d FROM movies LIMIT 1", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.plans.len(); got != planCacheCap {
		t.Errorf("plan cache holds %d entries, want cap %d", got, planCacheCap)
	}
	// The most recent statements are retained and still executable.
	sql := fmt.Sprintf("SELECT %d FROM movies LIMIT 1", planCacheCap+9)
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCacheSurvivesSchemaChange(t *testing.T) {
	// A cached parse over a dropped-and-recreated table must re-bind at
	// execution time and see the new schema.
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (v INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")
	const sql = "SELECT v FROM t"
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	db.MustExec("DROP TABLE t")
	if _, err := db.Query(sql); err == nil {
		t.Error("query over dropped table should fail even when cached")
	}
	db.MustExec("CREATE TABLE t (pad TEXT, v INTEGER)")
	db.MustExec("INSERT INTO t VALUES ('x', 42)")
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 42 {
		t.Errorf("cached parse over recreated table = %v", rowsToStrings(res.Rows))
	}
}
