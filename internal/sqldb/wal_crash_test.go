package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// The deterministic fault-injection harness: a fixed workload of commit
// units runs against a crashFS that fails (ENOSPC, short write) or
// "kills the process" (tear, lose) at the Nth filesystem operation, for
// every N the fault-free run needs. After each injected fault the durable
// state is reopened and must recover to a committed prefix of the
// workload: the dump must be bit-identical to the reference state either
// just before or just including the interrupted unit, and never expose a
// partial transaction.
//
// The harness is only trusted because TestCrashMatrixDetects* prove it
// fails when recovery is deliberately broken (the debugWAL* switches).
//
// Determinism: the workload runs under SyncAlways with automatic
// checkpoints disabled and explicit Checkpoint units, so every filesystem
// operation is issued synchronously by the workload goroutine at a commit
// point — the Nth operation is the same operation on every run.

const (
	unitSQL        = iota // one autocommit statement
	unitTxn               // explicit transaction, committed
	unitRollback          // explicit transaction, rolled back (no fs ops)
	unitCheckpoint        // explicit Checkpoint() call
)

type crashUnit struct {
	kind int
	sqls []string
}

// crashWorkload exercises every record kind and every recovery path:
// standalone DDL, autocommit batches, multi-op transaction frames, a
// rolled-back transaction (with DDL), a partially-applied statement
// (constraint violation mid-INSERT, the engine's documented non-atomic
// statement semantics), duplicate row images (content-addressed replay
// must pick the lowest id), NULLs and floats (exact-equality matching),
// and a checkpoint in the middle so later units replay on a compacted
// snapshot base.
func crashWorkload() []crashUnit {
	return []crashUnit{
		{unitSQL, []string{"CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, s TEXT, f REAL)"}},
		{unitSQL, []string{"CREATE INDEX idx_t_k ON t (k)"}},
		{unitSQL, []string{"INSERT INTO t VALUES (1, 1, 'one', 1.5), (2, 2, 'two', NULL), (3, 1, 'three', 3.5)"}},
		{unitSQL, []string{"CREATE TABLE dup (v INTEGER, w TEXT)"}},
		{unitSQL, []string{"INSERT INTO dup VALUES (7, 'same'), (7, 'same'), (7, 'same')"}},
		{unitTxn, []string{
			"UPDATE t SET s = 'ONE' WHERE k = 1",
			"DELETE FROM dup WHERE v = 7",
			"INSERT INTO t VALUES (4, 4, 'four', NULL)",
		}},
		{unitRollback, []string{
			"INSERT INTO t VALUES (99, 9, 'ghost', 0.0)",
			"CREATE TABLE ghost (x INTEGER)",
			"DROP TABLE dup",
		}},
		// Second VALUES row violates the primary key: the first row's
		// partial work is kept and logged.
		{unitSQL, []string{"INSERT INTO t VALUES (5, 5, 'five', 5.0), (1, 1, 'dup-pk', 0.0)"}},
		{unitCheckpoint, nil},
		{unitSQL, []string{"UPDATE t SET k = k + 10 WHERE k <= 2"}},
		{unitSQL, []string{"INSERT INTO dup VALUES (8, 'twin'), (8, 'twin')"}},
		{unitSQL, []string{"DELETE FROM t WHERE id = 2"}},
		{unitTxn, []string{
			"INSERT INTO dup VALUES (9, 'z')",
			"UPDATE dup SET w = 'Z' WHERE v = 9",
			"DELETE FROM dup WHERE v = 8",
		}},
		{unitSQL, []string{"DROP TABLE dup"}},
		{unitSQL, []string{"INSERT INTO t VALUES (6, 6, 'six', 6.0)"}},
	}
}

func mustDump(db *Database) string {
	var b strings.Builder
	if err := db.Dump(&b); err != nil {
		panic(err)
	}
	return b.String()
}

// isInjectedErr reports whether err originates from the fault injector
// (directly or wrapped as the typed ErrIO every durability failure
// surfaces as).
func isInjectedErr(err error) bool {
	return CodeOf(err) == ErrIO || errors.Is(err, errSimCrash) || errors.Is(err, errNoSpace)
}

// applyRefUnit replays one unit on the in-memory reference database,
// mirroring runCrashUnits exactly: engine errors are deterministic and
// leave the same partial work on both sides.
func applyRefUnit(db *Database, u crashUnit) {
	switch u.kind {
	case unitSQL:
		_, _ = db.Exec(u.sqls[0])
	case unitTxn:
		tx := db.Begin()
		for _, s := range u.sqls {
			_, _ = tx.Exec(s)
		}
		_ = tx.Commit()
	case unitRollback:
		tx := db.Begin()
		for _, s := range u.sqls {
			_, _ = tx.Exec(s)
		}
		_ = tx.Rollback()
	case unitCheckpoint:
		// No logical effect.
	}
}

// referenceDumps returns refs[k] = the dump of the state after the first
// k units, computed on a plain in-memory database.
func referenceDumps(units []crashUnit) []string {
	db := NewDatabase()
	refs := []string{mustDump(db)}
	for _, u := range units {
		applyRefUnit(db, u)
		refs = append(refs, mustDump(db))
	}
	return refs
}

// runCrashUnits executes units in order until the first injected I/O
// failure, returning how many units completed before it (and the error).
// Deterministic engine errors do not stop the run. unitSQL units hold a
// single statement, so every unit is all-or-nothing in the log.
func runCrashUnits(db *Database, units []crashUnit) (int, error) {
	for i, u := range units {
		var err error
		switch u.kind {
		case unitSQL:
			_, err = db.Exec(u.sqls[0])
		case unitTxn:
			tx := db.Begin()
			for _, s := range u.sqls {
				_, _ = tx.Exec(s)
			}
			err = tx.Commit()
		case unitRollback:
			tx := db.Begin()
			for _, s := range u.sqls {
				_, _ = tx.Exec(s)
			}
			err = tx.Rollback()
		case unitCheckpoint:
			err = db.Checkpoint()
		}
		if err != nil && isInjectedErr(err) {
			return i, err
		}
	}
	return len(units), nil
}

func crashModeName(mode int) string {
	switch mode {
	case faultENOSPC:
		return "enospc"
	case faultShortWrite:
		return "shortwrite"
	case faultCrashTear:
		return "tear"
	case faultCrashLose:
		return "lose"
	}
	return "?"
}

func openOnFS(fs walFS) (*Database, error) {
	return Open("db", WithDurability("", DurabilityOptions{fs: fs, CheckpointBytes: -1}))
}

// crashMatrix runs the workload once per injection point and checks the
// recovery contract at each, returning an error describing the first
// violation (nil when every crash point recovers to an acceptable
// committed prefix). It is a function, not a test, so the Detects* tests
// can assert that breaking recovery makes it fail.
func crashMatrix(mode int) error {
	units := crashWorkload()
	refs := referenceDumps(units)

	// Fault-free run: sizes the matrix and validates the reference model
	// (statement replay and row-image recovery must agree bit for bit).
	free := newCrashFS(0, mode)
	db, err := openOnFS(free)
	if err != nil {
		return fmt.Errorf("fault-free open: %w", err)
	}
	if i, err := runCrashUnits(db, units); err != nil {
		return fmt.Errorf("fault-free run failed at unit %d: %w", i, err)
	}
	final := mustDump(db)
	if err := db.Close(); err != nil {
		return fmt.Errorf("fault-free close: %w", err)
	}
	if final != refs[len(units)] {
		return fmt.Errorf("reference model diverges from live state:\n--- live ---\n%s--- ref ---\n%s", final, refs[len(units)])
	}
	db, err = openOnFS(free.afterCrash())
	if err != nil {
		return fmt.Errorf("fault-free reopen: %w", err)
	}
	recovered := mustDump(db)
	_ = db.Close()
	if recovered != final {
		return fmt.Errorf("fault-free recovery diverges:\n--- recovered ---\n%s--- live ---\n%s", recovered, final)
	}
	total := free.ops()

	for fail := 1; fail <= total; fail++ {
		fs := newCrashFS(fail, mode)
		completed := 0
		db, err := openOnFS(fs)
		if err == nil {
			completed, err = runCrashUnits(db, units)
			_ = db.Close() // may fail on a crashed/poisoned store
		} else if !isInjectedErr(err) {
			return fmt.Errorf("crash point %d/%s: open failed with non-injected error: %w", fail, crashModeName(mode), err)
		}
		if err != nil && !isInjectedErr(err) {
			return fmt.Errorf("crash point %d/%s: non-injected error: %w", fail, crashModeName(mode), err)
		}

		rdb, rerr := openOnFS(fs.afterCrash())
		if rerr != nil {
			return fmt.Errorf("crash point %d/%s: recovery failed: %w", fail, crashModeName(mode), rerr)
		}
		got := mustDump(rdb)
		if cerr := rdb.Close(); cerr != nil {
			return fmt.Errorf("crash point %d/%s: close after recovery: %w", fail, crashModeName(mode), cerr)
		}
		// Acceptable states: the prefix before the interrupted unit, or
		// including it (a fault after the bytes landed — e.g. at fsync —
		// legitimately leaves the unit durable). Never anything else, and
		// never a torn mixture.
		lo := refs[completed]
		hi := refs[min(completed+1, len(units))]
		if got != lo && got != hi {
			return fmt.Errorf("crash point %d/%s (unit %d interrupted): recovered state matches neither acceptable prefix\n--- recovered ---\n%s--- without unit %d ---\n%s--- with unit %d ---\n%s",
				fail, crashModeName(mode), completed, got, completed, lo, completed, hi)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCrashMatrixTear(t *testing.T) {
	if err := crashMatrix(faultCrashTear); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMatrixLose(t *testing.T) {
	if err := crashMatrix(faultCrashLose); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMatrixENOSPC(t *testing.T) {
	if err := crashMatrix(faultENOSPC); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMatrixShortWrite(t *testing.T) {
	if err := crashMatrix(faultShortWrite); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixDetectsDanglingFrameBug proves the harness catches a
// recovery that applies uncommitted transaction frames: with the debug
// switch set, a crash that tears a frame mid-record surfaces a partial
// transaction after reopen, and the matrix must notice.
func TestCrashMatrixDetectsDanglingFrameBug(t *testing.T) {
	debugWALApplyDanglingFrame = true
	defer func() { debugWALApplyDanglingFrame = false }()
	if err := crashMatrix(faultCrashTear); err == nil {
		t.Fatal("crash matrix passed while recovery applies dangling frames; the harness cannot detect broken recovery")
	} else {
		t.Logf("harness correctly detected the planted bug: %v", err)
	}
}

// TestCrashMatrixDetectsSkipSyncBug proves the harness catches a broken
// SyncAlways contract: with fsync silently skipped, a power loss drops
// commits that were acknowledged as durable.
func TestCrashMatrixDetectsSkipSyncBug(t *testing.T) {
	debugWALSkipSync = true
	defer func() { debugWALSkipSync = false }()
	if err := crashMatrix(faultCrashLose); err == nil {
		t.Fatal("crash matrix passed while fsync is skipped; the harness cannot detect lost durability")
	} else {
		t.Logf("harness correctly detected the planted bug: %v", err)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		b.Run(pol.String(), func(b *testing.B) {
			fs := newMemFS()
			db := openWalDB(b, fs, DurabilityOptions{Sync: pol, CheckpointBytes: -1})
			db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.MustExec("INSERT INTO t VALUES (?, 'payload')", i)
			}
			b.StopTimer()
			closeDB(b, db)
		})
	}
}

func BenchmarkWALRecovery(b *testing.B) {
	fs := newMemFS()
	db := openWalDB(b, fs, DurabilityOptions{Sync: SyncOff, CheckpointBytes: -1})
	db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
	for i := 0; i < 1000; i++ {
		db.MustExec("INSERT INTO t VALUES (?, 'payload')", i)
	}
	closeDB(b, db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open("db", WithDurability("", DurabilityOptions{fs: fs, CheckpointBytes: -1}))
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
