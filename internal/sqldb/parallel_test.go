package sqldb

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// Tests for morsel-driven parallel execution (parallel.go): the serial vs
// parallel plan-equivalence property, cancellation and cursor-abandonment
// worker hygiene, EXPLAIN ANALYZE worker annotations and the accounting
// property under parallelism, plus the satellite fast paths that rode
// along (range-shaped DML WHERE, index-served multi-key ORDER BY).

// lowerParallelMinRows drops the parallel threshold so small test corpora
// take the parallel paths, restoring it afterwards.
func lowerParallelMinRows(t testing.TB, n int) {
	t.Helper()
	old := parallelMinRows
	parallelMinRows = n
	t.Cleanup(func() { parallelMinRows = old })
}

// assertNoWorkerLeak asserts every spawned worker goroutine has exited.
// The counter is engine-wide, and the suite does not run tests in
// parallel, so zero here means no pool outlived its statement.
func assertNoWorkerLeak(t *testing.T) {
	t.Helper()
	if n := parallelWorkersActive.Load(); n != 0 {
		t.Fatalf("parallelWorkersActive = %d, want 0 (worker goroutines leaked)", n)
	}
}

// equivDBs builds the property corpus three ways: indexed with a worker
// pool, indexed serial, and unindexed with a worker pool (so heap scans
// parallelize too).
func equivDBs() (par, ser, plain *Database) {
	par = NewDatabase(WithMaxWorkers(4))
	ser = NewDatabase(WithMaxWorkers(1))
	plain = NewDatabase(WithMaxWorkers(4))
	for _, db := range []*Database{par, ser} {
		db.MustExec("CREATE TABLE m (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, c TEXT)")
		db.MustExec("CREATE INDEX idx_m_a ON m (a)")
	}
	plain.MustExec("CREATE TABLE m (id INTEGER, a INTEGER, b INTEGER, c TEXT)")
	return par, ser, plain
}

func equivPred(r *rand.Rand) string {
	atoms := []string{
		fmt.Sprintf("a = %d", r.Intn(30)),
		fmt.Sprintf("a > %d", r.Intn(30)),
		fmt.Sprintf("a BETWEEN %d AND %d", r.Intn(15), 15+r.Intn(15)),
		fmt.Sprintf("b > %d", r.Intn(50)),
		fmt.Sprintf("b * 2 < %d", r.Intn(60)),
		"a IS NULL",
		"a IS NOT NULL",
		fmt.Sprintf("c LIKE '%%%c%%'", 'a'+rune(r.Intn(5))),
		fmt.Sprintf("id %% %d = %d", 2+r.Intn(5), r.Intn(3)),
	}
	p := atoms[r.Intn(len(atoms))]
	for r.Intn(3) == 0 {
		op := "AND"
		if r.Intn(2) == 0 {
			op = "OR"
		}
		p = fmt.Sprintf("(%s %s %s)", p, op, atoms[r.Intn(len(atoms))])
	}
	return p
}

// TestSerialParallelEquivalence is the PR's core property: with the
// parallel threshold lowered so every eligible statement actually fans
// out, a pooled database, a serial database, and an unindexed pooled
// database execute identical interleaved DML and must return row-for-row
// identical results — same rows, same order — across scans, parallel
// aggregation, elided orders, and LIMIT truncation.
func TestSerialParallelEquivalence(t *testing.T) {
	lowerParallelMinRows(t, 8)
	par, ser, plain := equivDBs()
	all := []*Database{par, ser, plain}
	r := rand.New(rand.NewSource(2025))
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	nextID := 0
	insert := func() {
		var a any = r.Intn(30)
		if r.Intn(7) == 0 {
			a = nil
		}
		b, c := r.Intn(50), words[r.Intn(len(words))]
		for _, db := range all {
			db.MustExec("INSERT INTO m VALUES (?, ?, ?, ?)", nextID, a, b, c)
		}
		nextID++
	}
	for i := 0; i < 300; i++ {
		insert()
	}

	// Sanity: the pooled database must actually plan parallel operators,
	// or the whole property tests nothing.
	plan, err := par.Explain("SELECT id FROM m WHERE b > 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(plan, "\n"), "parallel seq scan") {
		t.Fatalf("pooled db did not plan a parallel scan:\n%s", strings.Join(plan, "\n"))
	}

	queries := func(pred string, r *rand.Rand) []string {
		return []string{
			"SELECT id, a, b, c FROM m WHERE " + pred,
			"SELECT a, COUNT(*), SUM(b), MIN(b), MAX(c), AVG(b) FROM m WHERE " + pred + " GROUP BY a",
			"SELECT COUNT(*), SUM(b), MIN(a), MAX(b) FROM m WHERE " + pred,
			"SELECT COUNT(*), SUM(a + b) FROM m WHERE " + pred, // non-mergeable SUM arg: stays serial
			fmt.Sprintf("SELECT id, a FROM m WHERE %s ORDER BY a LIMIT %d", pred, 1+r.Intn(9)),
			"SELECT id, a, b FROM m ORDER BY a, id LIMIT 12", // grouped tie-sort on the indexed dbs
			"SELECT DISTINCT a, b FROM m WHERE " + pred,
		}
	}
	for step := 0; step < 320; step++ {
		var dml string
		var params []any
		switch r.Intn(6) {
		case 0, 1:
			insert()
		case 2:
			dml = fmt.Sprintf("UPDATE m SET a = %d WHERE id %% 7 = %d", r.Intn(30), r.Intn(7))
		case 3:
			// Range-shaped DML: the indexed dbs serve it from the ordered
			// view (dmlRangeIDs), plain walks the heap — results must agree.
			dml, params = "UPDATE m SET b = b + 1 WHERE a > ?", []any{r.Intn(30)}
		case 4:
			dml, params = "DELETE FROM m WHERE id = ?", []any{r.Intn(nextID + 1)}
		default:
			dml = fmt.Sprintf("DELETE FROM m WHERE a BETWEEN %d AND %d", r.Intn(28), r.Intn(6))
		}
		if dml != "" {
			n0, err0 := all[0].Exec(dml, params...)
			for _, db := range all[1:] {
				n, err := db.Exec(dml, params...)
				if (err == nil) != (err0 == nil) || n != n0 {
					t.Fatalf("step %d: DML diverged on %q: (%d, %v) vs (%d, %v)",
						step, dml, n0, err0, n, err)
				}
			}
		}
		pred := equivPred(r)
		for _, q := range queries(pred, r) {
			want := queryStrings(t, ser, q)
			for name, db := range map[string]*Database{"parallel": par, "plain": plain} {
				got := queryStrings(t, db, q)
				if len(got) != len(want) {
					t.Fatalf("step %d: %s diverged on %q: %d rows vs %d", step, name, q, len(got), len(want))
				}
				for i := range want {
					if strings.Join(got[i], "|") != strings.Join(want[i], "|") {
						t.Fatalf("step %d: %s diverged on %q at row %d: %v vs %v",
							step, name, q, i, got[i], want[i])
					}
				}
			}
		}
	}
	assertNoWorkerLeak(t)
}

// bigParallelDB builds a table large enough to parallelize at the default
// threshold, with a worker pool forced on.
func bigParallelDB(t testing.TB, n int) *Database {
	t.Helper()
	db := NewDatabase(WithMaxWorkers(4))
	db.MustExec("CREATE TABLE big (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		db.MustExec("INSERT INTO big VALUES (?, ?, ?)", i, r.Intn(100), r.Intn(1000))
	}
	return db
}

// TestParallelScanCancellation: cancelling the context mid-iteration of a
// parallel scan surfaces ErrCanceled and stops every worker; after Close
// no goroutine lingers and the read lock is released.
func TestParallelScanCancellation(t *testing.T) {
	db := bigParallelDB(t, 8192)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRows(ctx, "SELECT id, a FROM big WHERE b >= 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("Next() = false at warm-up row %d: %v", i, rows.Err())
		}
	}
	cancel()
	for rows.Next() {
	}
	if CodeOf(rows.Err()) != ErrCanceled {
		t.Fatalf("Err() = %v, want ErrCanceled", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoWorkerLeak(t)
	// The read lock must be free again: a write would deadlock otherwise.
	db.MustExec("INSERT INTO big VALUES (8192, 1, 1)")
}

// TestParallelScanAbandonedCursor: closing a cursor after a partial read
// of a parallel scan stops the pool (no goroutine leak, bounded buffered
// morsels) and releases the lock.
func TestParallelScanAbandonedCursor(t *testing.T) {
	db := bigParallelDB(t, 8192)
	rows, err := db.QueryRows(context.Background(), "SELECT id FROM big WHERE b >= 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("Next() = false at row %d: %v", i, rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoWorkerLeak(t)
	db.MustExec("DELETE FROM big WHERE id = 0")
	if got := db.Stats().OpenCursors; got != 0 {
		t.Fatalf("OpenCursors = %d, want 0", got)
	}
}

// TestParallelExplainAnalyzeWorkersAndAccounting: EXPLAIN ANALYZE renders
// workers=N on parallel operators, and the per-operator accounting
// property — the sum of per-operator scanned counts equals the per-query
// RowsScanned — holds when the rows were scanned by a worker pool.
func TestParallelExplainAnalyzeWorkersAndAccounting(t *testing.T) {
	db := bigParallelDB(t, 8192)
	ctx := context.Background()

	a, err := db.ExplainAnalyze(ctx, "SELECT id, a FROM big WHERE b > 100")
	if err != nil {
		t.Fatal(err)
	}
	plan := strings.Join(a.Plan, "\n")
	if !strings.Contains(plan, "parallel seq scan") || !strings.Contains(plan, "workers=4") {
		t.Fatalf("analyzed plan missing parallel scan annotation:\n%s", plan)
	}
	if !strings.Contains(plan, "scanned=") {
		t.Fatalf("analyzed plan missing scanned= accounting:\n%s", plan)
	}
	if got, want := a.scannedTotal(), a.Stats.RowsScanned; got != want {
		t.Fatalf("scan: per-operator scanned %d != per-query RowsScanned %d", got, want)
	}
	if a.Stats.RowsScanned == 0 {
		t.Fatal("parallel scan recorded zero scanned rows")
	}

	a, err = db.ExplainAnalyze(ctx, "SELECT a, COUNT(*), SUM(b) FROM big GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	plan = strings.Join(a.Plan, "\n")
	if !strings.Contains(plan, "parallel workers=4") {
		t.Fatalf("analyzed aggregate plan missing parallel annotation:\n%s", plan)
	}
	if got, want := a.scannedTotal(), a.Stats.RowsScanned; got != want {
		t.Fatalf("agg: per-operator scanned %d != per-query RowsScanned %d", got, want)
	}
	assertNoWorkerLeak(t)
}

// TestParallelAggEquivalence pins the partial-aggregation merge against
// the serial fold on a corpus with many groups, NULLs, and every
// mergeable aggregate — identical values AND identical first-seen group
// order.
func TestParallelAggEquivalence(t *testing.T) {
	lowerParallelMinRows(t, 8)
	par := NewDatabase(WithMaxWorkers(4))
	ser := NewDatabase(WithMaxWorkers(1))
	r := rand.New(rand.NewSource(11))
	for _, db := range []*Database{par, ser} {
		db.MustExec("CREATE TABLE g (id INTEGER PRIMARY KEY, k INTEGER, v INTEGER, w TEXT)")
	}
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	for i := 0; i < 5000; i++ {
		var k any = r.Intn(400)
		var v any = r.Intn(1000)
		if r.Intn(11) == 0 {
			v = nil
		}
		w := words[r.Intn(len(words))]
		for _, db := range []*Database{par, ser} {
			db.MustExec("INSERT INTO g VALUES (?, ?, ?, ?)", i, k, v, w)
		}
	}
	for _, q := range []string{
		"SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v), MAX(w) FROM g GROUP BY k",
		"SELECT k % 7, COUNT(*), SUM(v) FROM g GROUP BY k % 7",
		"SELECT COUNT(*), SUM(v), TOTAL(v), MIN(w), MAX(v) FROM g",
		"SELECT COUNT(*) FROM g WHERE v > 2000", // empty single group
		"SELECT k, COUNT(*) FROM g WHERE v > 500 GROUP BY k HAVING COUNT(*) > 3",
		"SELECT k, SUM(v) FROM g GROUP BY k ORDER BY SUM(v) DESC LIMIT 5",
	} {
		want := queryStrings(t, ser, q)
		got := queryStrings(t, par, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("parallel aggregation diverged on %q:\n got %v\nwant %v", q, got, want)
		}
	}
	// GROUP_CONCAT and DISTINCT aggregates must refuse the parallel path
	// and still agree (order-sensitive / unmergeable).
	for _, q := range []string{
		"SELECT k % 5, GROUP_CONCAT(w) FROM g GROUP BY k % 5",
		"SELECT COUNT(DISTINCT w), SUM(DISTINCT v) FROM g",
	} {
		want := queryStrings(t, ser, q)
		got := queryStrings(t, par, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("serial-only aggregate diverged on %q", q)
		}
	}
	assertNoWorkerLeak(t)
}

// TestParallelJoinBuildEquivalence pins the partitioned parallel
// hash-join build: identical join output (values and order) to the
// serial build, NULL build keys dropped, and the plan annotated with the
// build worker count.
func TestParallelJoinBuildEquivalence(t *testing.T) {
	lowerParallelMinRows(t, 64)
	par := NewDatabase(WithMaxWorkers(4))
	ser := NewDatabase(WithMaxWorkers(1))
	r := rand.New(rand.NewSource(13))
	for _, db := range []*Database{par, ser} {
		db.MustExec("CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, amt INTEGER)")
		db.MustExec("CREATE TABLE custs (cid INTEGER, region INTEGER)")
	}
	for i := 0; i < 900; i++ {
		var cid any = i % 300
		if i%37 == 0 {
			cid = nil // NULL build keys never join
		}
		region := r.Intn(10)
		for _, db := range []*Database{par, ser} {
			db.MustExec("INSERT INTO custs VALUES (?, ?)", cid, region)
		}
	}
	for i := 0; i < 600; i++ {
		cust, amt := r.Intn(320), r.Intn(500)
		for _, db := range []*Database{par, ser} {
			db.MustExec("INSERT INTO orders VALUES (?, ?, ?)", i, cust, amt)
		}
	}
	queries := []string{
		"SELECT o.id, o.cust, c.region FROM orders o JOIN custs c ON o.cust = c.cid",
		"SELECT o.id, c.region FROM orders o LEFT JOIN custs c ON o.cust = c.cid",
		"SELECT o.id, c.region FROM orders o JOIN custs c ON o.cust = c.cid + 0", // computed build key
	}
	plan, err := par.Explain(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(plan, "\n"), "parallel build workers=") {
		t.Fatalf("pooled db did not plan a parallel join build:\n%s", strings.Join(plan, "\n"))
	}
	for _, q := range queries {
		want := queryStrings(t, ser, q)
		got := queryStrings(t, par, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("parallel join build diverged on %q (%d vs %d rows)", q, len(got), len(want))
		}
	}
	assertNoWorkerLeak(t)
}

// TestDMLRangeFastPath pins the satellite range-shaped DML WHERE path:
// an UPDATE/DELETE whose WHERE is a range over an indexed column is
// served from the index's ordered view (IndexRangeScans ticks, FullScans
// does not) and mutates exactly the rows the heap walk would.
func TestDMLRangeFastPath(t *testing.T) {
	indexed := NewDatabase()
	plain := NewDatabase()
	indexed.MustExec("CREATE TABLE d (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
	indexed.MustExec("CREATE INDEX idx_d_a ON d (a)")
	plain.MustExec("CREATE TABLE d (id INTEGER, a INTEGER, b INTEGER)")
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		var a any = r.Intn(60)
		if r.Intn(9) == 0 {
			a = nil
		}
		b := r.Intn(100)
		indexed.MustExec("INSERT INTO d VALUES (?, ?, ?)", i, a, b)
		plain.MustExec("INSERT INTO d VALUES (?, ?, ?)", i, a, b)
	}
	check := func(dml string, params ...any) {
		t.Helper()
		before := indexed.Stats()
		ni, erri := indexed.Exec(dml, params...)
		after := indexed.Stats()
		np, errp := plain.Exec(dml, params...)
		if erri != nil || errp != nil || ni != np {
			t.Fatalf("%q: indexed (%d, %v) vs plain (%d, %v)", dml, ni, erri, np, errp)
		}
		if got := after.IndexRangeScans - before.IndexRangeScans; got != 1 {
			t.Fatalf("%q: IndexRangeScans delta = %d, want 1 (fast path not taken)", dml, got)
		}
		if after.FullScans != before.FullScans {
			t.Fatalf("%q: FullScans moved %d -> %d, want unchanged", dml, before.FullScans, after.FullScans)
		}
		want := queryStrings(t, plain, "SELECT id, a, b FROM d")
		got := queryStrings(t, indexed, "SELECT id, a, b FROM d")
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%q: table contents diverged", dml)
		}
	}
	check("UPDATE d SET b = b + 1 WHERE a > 40")
	check("UPDATE d SET b = b - 1 WHERE a >= ? AND a < ?", 10, 25)
	check("DELETE FROM d WHERE a BETWEEN 5 AND 9")
	check("DELETE FROM d WHERE ? <= a AND a <= ?", 50, 55)
	check("UPDATE d SET a = a + 1 WHERE a > 57") // SET touches the range column itself

	// A NULL bound matches nothing, on both engines, without a scan.
	before := indexed.Stats()
	ni, err := indexed.Exec("DELETE FROM d WHERE a < ?", nil)
	if err != nil || ni != 0 {
		t.Fatalf("NULL-bound DELETE: (%d, %v), want (0, nil)", ni, err)
	}
	np, err := plain.Exec("DELETE FROM d WHERE a < ?", nil)
	if err != nil || np != 0 {
		t.Fatalf("NULL-bound DELETE (plain): (%d, %v), want (0, nil)", np, err)
	}
	if got := indexed.Stats().FullScans - before.FullScans; got != 0 {
		t.Fatalf("NULL-bound DELETE walked the heap (FullScans delta %d)", got)
	}

	// Non-range shapes must keep using the heap walk and stay equivalent.
	before = indexed.Stats()
	check2 := func(dml string) {
		t.Helper()
		ni, erri := indexed.Exec(dml)
		np, errp := plain.Exec(dml)
		if erri != nil || errp != nil || ni != np {
			t.Fatalf("%q: indexed (%d, %v) vs plain (%d, %v)", dml, ni, erri, np, errp)
		}
	}
	check2("UPDATE d SET b = 0 WHERE a > 10 AND b > 90") // mixed columns: slow path
	check2("DELETE FROM d WHERE a > 55 OR b > 95")       // OR: slow path
	if got := indexed.Stats().IndexRangeScans - before.IndexRangeScans; got != 0 {
		t.Fatalf("non-range DML took the range fast path (delta %d)", got)
	}
}

// TestOrderByTieSortFromIndex pins the satellite multi-key ORDER BY
// path: `ORDER BY a, b` with an index on a streams the index order and
// tie-sorts runs, so a LIMIT k reads O(k + one run) rows instead of the
// table — while producing exactly the full sort's output.
func TestOrderByTieSortFromIndex(t *testing.T) {
	indexed := NewDatabase()
	plain := NewDatabase()
	indexed.MustExec("CREATE TABLE s (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
	indexed.MustExec("CREATE INDEX idx_s_a ON s (a)")
	plain.MustExec("CREATE TABLE s (id INTEGER, a INTEGER, b INTEGER)")
	r := rand.New(rand.NewSource(5))
	const rows, groups = 2000, 50
	for i := 0; i < rows; i++ {
		var a any = r.Intn(groups)
		if r.Intn(40) == 0 {
			a = nil
		}
		b := r.Intn(10) // small domain: real ties on (a, b) too
		indexed.MustExec("INSERT INTO s VALUES (?, ?, ?)", i, a, b)
		plain.MustExec("INSERT INTO s VALUES (?, ?, ?)", i, a, b)
	}
	for _, q := range []string{
		"SELECT id, a, b FROM s ORDER BY a, b",
		"SELECT id, a, b FROM s ORDER BY a DESC, b",
		"SELECT id, a, b FROM s ORDER BY a, b DESC, id",
		"SELECT id, a, b FROM s ORDER BY a, b LIMIT 17",
		"SELECT id, a, b FROM s ORDER BY a DESC, b DESC LIMIT 9 OFFSET 4",
	} {
		want := queryStrings(t, plain, q)
		got := queryStrings(t, indexed, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("tie-sort diverged on %q", q)
		}
	}
	// The O(k)-ish scan bound: LIMIT 17 must read at most a handful of
	// runs (expected run length rows/groups = 40), nowhere near the table.
	rs, err := indexed.QueryRows(context.Background(), "SELECT id, a, b FROM s ORDER BY a, b LIMIT 17")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rs.Next() {
		n++
	}
	st := rs.Stats()
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 17 {
		t.Fatalf("LIMIT 17 returned %d rows", n)
	}
	if st.OrderedIndexOrders != 1 {
		t.Fatalf("OrderedIndexOrders = %d, want 1 (index did not serve the leading key)", st.OrderedIndexOrders)
	}
	// Two full runs (~80 rows) plus slack is ample; the table is 2000.
	if limit := uint64(rows / 4); st.RowsScanned > limit {
		t.Fatalf("RowsScanned = %d for LIMIT 17, want <= %d (tie-sort not streaming)", st.RowsScanned, limit)
	}
	// The single-key elision must still skip the sort entirely (no
	// regression from widening the gate).
	plan, err := indexed.Explain("SELECT id, a FROM s ORDER BY a LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(plan, "\n")
	if strings.Contains(text, "sort by") || !strings.Contains(text, "ordered index scan") {
		t.Fatalf("single-key ORDER BY regressed:\n%s", text)
	}
	// Multi-key keeps a sort node — but a streaming, presorted one over
	// the ordered scan.
	plan, err = indexed.Explain("SELECT id, a, b FROM s ORDER BY a, b")
	if err != nil {
		t.Fatal(err)
	}
	text = strings.Join(plan, "\n")
	if !strings.Contains(text, "sort by") || !strings.Contains(text, "ordered index scan") {
		t.Fatalf("multi-key ORDER BY did not combine ordered scan + tie-sort:\n%s", text)
	}
}

// TestConcurrentParallelQueries drives several goroutines through
// pooled scans, aggregations and cursors concurrently (with -race in CI)
// while asserting nothing leaks.
func TestConcurrentParallelQueries(t *testing.T) {
	db := bigParallelDB(t, 8192)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := db.Query("SELECT id FROM big WHERE b > ?", i*50); err != nil {
						errs <- err
					}
				case 1:
					if _, err := db.Query("SELECT a, COUNT(*), SUM(b) FROM big GROUP BY a"); err != nil {
						errs <- err
					}
				default:
					rows, err := db.QueryRows(ctx, "SELECT id, a FROM big WHERE b >= 0")
					if err != nil {
						errs <- err
						continue
					}
					for j := 0; j < 5 && rows.Next(); j++ {
					}
					if err := rows.Close(); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	assertNoWorkerLeak(t)
}

// TestParallelFloatAggEquivalence pins the float SUM/AVG parallel path
// (the ROADMAP carried-forward gap). Float addition is not associative,
// so the engine defines its summation order — left-to-right within each
// morsel, then morsels folded in ascending order — making results
// deterministic regardless of worker count or scheduling. On
// exactly-representable values (quarters), every association is exact,
// so serial and parallel results must additionally be bit-identical.
func TestParallelFloatAggEquivalence(t *testing.T) {
	lowerParallelMinRows(t, 8)
	par := NewDatabase(WithMaxWorkers(4))
	ser := NewDatabase(WithMaxWorkers(1))
	r := rand.New(rand.NewSource(17))
	for _, db := range []*Database{par, ser} {
		db.MustExec("CREATE TABLE f (id INTEGER PRIMARY KEY, g INTEGER, v REAL)")
	}
	for i := 0; i < 5000; i++ {
		g := r.Intn(60)
		// Quarters up to ~2^12: sums stay far below 2^53, so every
		// addition order yields the same float64.
		var v any = float64(r.Intn(1<<14)-1<<13) / 4
		if r.Intn(13) == 0 {
			v = nil
		}
		for _, db := range []*Database{par, ser} {
			db.MustExec("INSERT INTO f VALUES (?, ?, ?)", i, g, v)
		}
	}
	// Sanity: the pooled db must actually take the parallel aggregate path
	// for a float SUM, or this property tests nothing.
	plan, err := par.Explain("SELECT SUM(v) FROM f")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(plan, "\n"), "parallel") {
		t.Fatalf("float SUM did not plan parallel aggregation:\n%s", strings.Join(plan, "\n"))
	}
	queries := []string{
		"SELECT SUM(v), AVG(v), TOTAL(v) FROM f",
		"SELECT g, SUM(v), AVG(v) FROM f GROUP BY g",
		"SELECT g % 7, SUM(v), COUNT(v) FROM f WHERE v > 0 GROUP BY g % 7",
		"SELECT SUM(v) FROM f WHERE id % 3 = 1",
	}
	for _, q := range queries {
		want := queryStrings(t, ser, q)
		got := queryStrings(t, par, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("float aggregation diverged serial vs parallel on %q:\n got %v\nwant %v", q, got, want)
		}
		// Determinism: repeated parallel runs (different morsel claim
		// interleavings) must reproduce the same bits every time.
		for run := 0; run < 4; run++ {
			if again := queryStrings(t, par, q); fmt.Sprint(again) != fmt.Sprint(got) {
				t.Fatalf("float aggregation nondeterministic on %q:\n got %v\nthen %v", q, got, again)
			}
		}
	}
	assertNoWorkerLeak(t)
}
