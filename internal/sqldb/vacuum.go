package sqldb

import "context"

// The background vacuum replaces the old synchronous threshold compaction.
// DML never pays an O(n) rebuild inside a statement anymore: writers only
// stamp xmax / prepend versions, and a short-lived background goroutine —
// woken when enough dead versions accumulate — reclaims every version that
// has become invisible to all live snapshots.
//
// Reclaimability is decided against the oldest-active-snapshot horizon
// (txnManager.horizon): a version whose committed xmax precedes the
// horizon is invisible to every current and future snapshot, and in a
// newest-first chain xmax values only shrink going older, so the chain
// can be truncated at the first such version. Unlinked versions keep
// their own forward links, so a reader mid-walk on a stale chain still
// terminates safely.
//
// The vacuum runs under the single-writer latch (writers pause, readers
// do not), then rebuilds the swept tables' superset indexes and publishes
// fresh ordered views; readers holding the old view or old posting copies
// keep working — their recheck already skips reclaimed ids.

// vacuumThreshold is the number of accumulated dead versions that wakes
// the background vacuum.
const vacuumThreshold = 256

// maybeVacuum wakes the background vacuum when enough garbage has
// accumulated. Single-flight: at most one vacuum goroutine exists.
func (db *Database) maybeVacuum() {
	if db.closed.Load() || db.garbage.Load() < vacuumThreshold {
		return
	}
	if !db.vacuuming.CompareAndSwap(false, true) {
		return
	}
	db.vacWG.Add(1)
	go func() {
		defer db.vacWG.Done()
		defer db.vacuuming.Store(false)
		db.vacuum(nil)
	}()
}

// maybeCheckpoint wakes the background checkpoint when the WAL has grown
// past its configured threshold. Single-flight: at most one checkpoint
// goroutine exists. Called after a successful append, so the goroutine's
// writeMu acquisition simply queues behind the in-flight commit.
func (db *Database) maybeCheckpoint() {
	w := db.wal
	if w == nil || db.closed.Load() || !w.wantCheckpoint() {
		return
	}
	if !db.checkpointing.CompareAndSwap(false, true) {
		return
	}
	db.vacWG.Add(1)
	go func() {
		defer db.vacWG.Done()
		defer db.checkpointing.Store(false)
		_ = w.checkpoint()
	}()
}

// Vacuum synchronously reclaims every version invisible to all live
// snapshots and returns how many versions it removed. The background
// vacuum calls the same pass; this entry point exists for tests and for
// embedders that want deterministic reclamation.
func (db *Database) Vacuum() int {
	qc := newQueryCtx(context.Background(), db)
	defer qc.flush()
	return db.vacuum(qc)
}

// vacuum runs one reclamation pass over every table.
func (db *Database) vacuum(qc *queryCtx) int {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.garbage.Store(0)
	h := db.tm.horizon()
	total := 0
	for _, t := range db.tableMap() {
		total += t.vacuum(h)
	}
	db.stats.vacuumRuns.Add(1)
	if total > 0 {
		db.stats.versionsReclaimed.Add(uint64(total))
	}
	if qc != nil {
		qc.versionsReclaimed += uint64(total)
	}
	return total
}

// vacuum truncates this table's version chains at the horizon and, when
// anything was reclaimed (or rolled-back writes left stale superset
// entries behind), rebuilds the indexes from the surviving versions.
func (t *Table) vacuum(h uint64) int {
	arr, n := t.loadSlots()
	reclaimed := 0
	for id := 0; id < n; id++ {
		head := arr[id].head.Load()
		if head == nil {
			continue
		}
		// Find the newest version whose committed xmax precedes the
		// horizon. Under writeMu no writer is active, so every nonzero
		// xmax is committed (rollback clears the ones it unwinds).
		var prev *rowVersion
		v := head
		for v != nil {
			if xmax := v.xmax.Load(); xmax != 0 && xmax < h {
				break
			}
			prev, v = v, v.next.Load()
		}
		if v == nil {
			continue
		}
		for w := v; w != nil; w = w.next.Load() {
			reclaimed++
		}
		if prev == nil {
			arr[id].head.Store(nil)
		} else {
			prev.next.Store(nil)
		}
	}
	if reclaimed > 0 || t.staleIdx.Load() > 0 {
		t.staleIdx.Store(0)
		t.rebuildIndexes()
	}
	return reclaimed
}

// rebuildIndexes recomputes every index's superset postings from the
// surviving versions of every chain and invalidates the ordered views
// (the next ordered access rebuilds lazily). Under writeMu; readers
// holding old postings copies or old views stay correct via recheck.
func (t *Table) rebuildIndexes() {
	arr, n := t.loadSlots()
	for _, idx := range t.idxs() {
		m := make(map[string]posting, n)
		for id := 0; id < n; id++ {
			for v := arr[id].head.Load(); v != nil; v = v.next.Load() {
				if v.xmin == invalidXID || v.row == nil {
					continue
				}
				val := v.row[idx.Column]
				key := val.Key()
				p := m[key]
				if p.ids == nil {
					p.val = val
				}
				p.ids = spliceID(p.ids, id)
				m[key] = p
			}
		}
		idx.mu.Lock()
		idx.m = m
		idx.ord.Store(nil)
		idx.mu.Unlock()
	}
}
