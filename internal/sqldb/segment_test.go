package sqldb

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Tests for the compressed column segments (segment.go): per-encoding
// codec round-trips (including the adversarial int64 extremes the
// mod-2^64 delta arithmetic exists for), the seal/unseal lifecycle
// against DML, and the fuzz target that feeds both random column data
// through seal->decode and arbitrary bytes through decode alone.

// sealRoundTrip seals one column and decodes it back, asserting exact
// value equality (bit-exact for floats).
func sealRoundTrip(t *testing.T, vals []Value) {
	t.Helper()
	c := sealColumn(vals)
	dst := make([]Value, len(vals))
	if err := c.decode(len(vals), dst); err != nil {
		t.Fatalf("decode(enc=%d): %v", c.enc, err)
	}
	for i := range vals {
		if !segValuesEqual(vals[i], dst[i]) {
			t.Fatalf("enc=%d: value %d round-tripped %v -> %v", c.enc, i, vals[i], dst[i])
		}
	}
}

// segValuesEqual is valuesExactEqual with bit-pattern float comparison,
// so NaN and negative zero round-trips are checked exactly.
func segValuesEqual(a, b Value) bool {
	if a.kind == KindFloat && b.kind == KindFloat {
		return math.Float64bits(a.f) == math.Float64bits(b.f)
	}
	return valuesExactEqual(a, b)
}

func TestSegmentCodecIntRoundTrip(t *testing.T) {
	cases := [][]Value{
		{Int(0)},
		{Int(1), Int(2), Int(3), Int(4)},
		// Extremes and wraparound-sized deltas: MaxInt64 -> MinInt64 is a
		// delta that only mod-2^64 arithmetic represents exactly.
		{Int(math.MaxInt64), Int(math.MinInt64), Int(0), Int(-1), Int(math.MaxInt64)},
		{Int(-5), Null, Int(7), Null, Null, Int(math.MinInt64)},
		{Null, Null, Null}, // all-NULL stays raw but must still round-trip
	}
	for i, vals := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) { sealRoundTrip(t, vals) })
	}
	if enc := sealColumn([]Value{Int(1), Int(2)}).enc; enc != segEncInt {
		t.Fatalf("all-int column sealed as enc=%d, want segEncInt", enc)
	}
	r := rand.New(rand.NewSource(11))
	vals := make([]Value, segBlockSlots)
	for i := range vals {
		switch r.Intn(10) {
		case 0:
			vals[i] = Null
		case 1:
			vals[i] = Int(r.Int63() - r.Int63())
		default:
			vals[i] = Int(int64(r.Intn(1000) - 500))
		}
	}
	sealRoundTrip(t, vals)
}

func TestSegmentCodecFloatRoundTrip(t *testing.T) {
	cases := [][]Value{
		{Float(0)},
		{Float(1.5), Float(1.5), Float(1.25), Float(-1.25)},
		{Float(0), Float(math.Copysign(0, -1)), Float(math.Inf(1)), Float(math.Inf(-1)), Float(math.NaN())},
		{Float(math.MaxFloat64), Float(math.SmallestNonzeroFloat64), Null, Float(-0.1)},
	}
	for i, vals := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) { sealRoundTrip(t, vals) })
	}
	if enc := sealColumn([]Value{Float(1), Float(2)}).enc; enc != segEncFloat {
		t.Fatalf("all-float column sealed as enc=%d, want segEncFloat", enc)
	}
	r := rand.New(rand.NewSource(12))
	vals := make([]Value, segBlockSlots)
	for i := range vals {
		if r.Intn(8) == 0 {
			vals[i] = Null
		} else {
			vals[i] = Float(r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10)))
		}
	}
	sealRoundTrip(t, vals)
}

func TestSegmentCodecTextRoundTrip(t *testing.T) {
	cases := [][]Value{
		{Text("")},
		{Text("a"), Text("a"), Text("b"), Text("a")}, // dictionary repeats
		{Text("héllo"), Text("wörld\x00raw"), Null, Text(""), Text("héllo")},
	}
	for i, vals := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) { sealRoundTrip(t, vals) })
	}
	if enc := sealColumn([]Value{Text("x"), Text("y")}).enc; enc != segEncText {
		t.Fatalf("all-text column sealed as enc=%d, want segEncText", enc)
	}
	words := []string{"ant", "bee", "cat", "", "a-much-longer-dictionary-entry"}
	r := rand.New(rand.NewSource(13))
	vals := make([]Value, segBlockSlots)
	for i := range vals {
		if r.Intn(9) == 0 {
			vals[i] = Null
		} else {
			vals[i] = Text(words[r.Intn(len(words))])
		}
	}
	sealRoundTrip(t, vals)
}

func TestSegmentCodecBoolAndRawRoundTrip(t *testing.T) {
	sealRoundTrip(t, []Value{Bool(true), Bool(false), Null, Bool(true), Bool(true)})
	if enc := sealColumn([]Value{Bool(true)}).enc; enc != segEncBool {
		t.Fatalf("all-bool column sealed as enc=%d, want segEncBool", enc)
	}
	// Mixed kinds force the raw fallback.
	mixed := []Value{Int(7), Text("x"), Float(2.5), Bool(false), Null, Int(-9)}
	if enc := sealColumn(mixed).enc; enc != segEncRaw {
		t.Fatalf("mixed column sealed as enc=%d, want segEncRaw", enc)
	}
	sealRoundTrip(t, mixed)
}

// TestSegmentDecodeCorruptionSafe feeds truncations of every encoding's
// valid stream through decode: each must return a typed error or decode
// cleanly, never panic — the same contract the fuzz target enforces.
func TestSegmentDecodeCorruptionSafe(t *testing.T) {
	cols := []segCol{
		sealColumn([]Value{Int(1), Int(math.MinInt64), Null}),
		sealColumn([]Value{Float(1.5), Float(-2.5), Null}),
		sealColumn([]Value{Text("abc"), Text("abc"), Text("d")}),
		sealColumn([]Value{Bool(true), Null, Bool(false)}),
		sealColumn([]Value{Int(1), Text("x"), Null}),
	}
	dst := make([]Value, 3)
	for _, c := range cols {
		for cut := 0; cut <= len(c.data); cut++ {
			trunc := segCol{enc: c.enc, kinds: c.kinds, data: c.data[:cut]}
			if err := trunc.decode(3, dst); err != nil && CodeOf(err) != ErrInternal {
				t.Fatalf("enc=%d cut=%d: error %v, want ErrInternal", c.enc, cut, err)
			}
		}
	}
	bad := segCol{enc: 99, data: make([]byte, 8)}
	if err := bad.decode(3, dst); CodeOf(err) != ErrInternal {
		t.Fatalf("unknown encoding error = %v, want ErrInternal", err)
	}
}

// sealedTestDB builds a database whose table holds enough committed rows
// for `blocks` full sealable blocks, then seals synchronously.
func sealedTestDB(t testing.TB, blocks int) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustExec("CREATE TABLE s (id INTEGER, a INTEGER, f FLOAT, c TEXT, ok BOOL)")
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	n := blocks * segBlockSlots
	for i := 0; i < n; i++ {
		db.MustExec("INSERT INTO s VALUES (?, ?, ?, ?, ?)",
			i, i%97, float64(i)/8, words[i%len(words)], i%3 == 0)
	}
	if sealed := db.Seal(); sealed != n {
		t.Fatalf("Seal() sealed %d rows, want %d", sealed, n)
	}
	return db
}

// TestSealUnsealDMLInterplay pins the hybrid-storage lifecycle: sealing
// covers cold full blocks, scans read sealed data identically, DML on a
// covered slot unseals exactly the covering segment before the change is
// visible, and a later Seal pass re-freezes the region.
func TestSealUnsealDMLInterplay(t *testing.T) {
	db := sealedTestDB(t, 2)
	if got := db.Stats().SegmentsSealed; got == 0 {
		t.Fatal("Stats().SegmentsSealed = 0 after Seal")
	}
	tbl := db.tableMap()["s"]
	if len(tbl.loadSegs()) == 0 {
		t.Fatal("no segments published after Seal")
	}

	before := db.Stats()
	rows := queryStrings(t, db, "SELECT COUNT(*), MIN(a), MAX(a) FROM s WHERE a < 50")
	if rows[0][1] != "0" || rows[0][2] != "49" {
		t.Fatalf("sealed aggregate = %v", rows[0])
	}
	after := db.Stats()
	if after.SegmentScans <= before.SegmentScans || after.DecodedBlocks <= before.DecodedBlocks {
		t.Fatalf("sealed scan did not bump segment counters: %+v -> %+v",
			before.SegmentScans, after.SegmentScans)
	}

	// DML into block 0 must unseal its covering segment; rows stay served
	// by the heap, so the update is immediately visible.
	db.MustExec("UPDATE s SET a = 1000 WHERE id = 10")
	rows = queryStrings(t, db, "SELECT a FROM s WHERE id = 10")
	if rows[0][0] != "1000" {
		t.Fatalf("post-unseal read = %q, want 1000", rows[0][0])
	}
	rows = queryStrings(t, db, "SELECT COUNT(*) FROM s WHERE a = 1000")
	if rows[0][0] != "1" {
		t.Fatalf("post-unseal count = %q, want 1", rows[0][0])
	}

	// DELETE on an unsealed region then re-seal: the deleted row's slot is
	// a tombstone until vacuum, so its block is not yet resealable, but
	// Seal must still cover every other cold block and total counts agree.
	db.MustExec("DELETE FROM s WHERE id = 20")
	db.Seal()
	rows = queryStrings(t, db, "SELECT COUNT(*) FROM s")
	if want := fmt.Sprint(2*segBlockSlots - 1); rows[0][0] != want {
		t.Fatalf("post-reseal count = %q, want %s", rows[0][0], want)
	}
}

// TestSealSkipsHotBlocks: a block with an uncommitted or multi-version
// slot must not seal; after vacuum clears the dead version it becomes
// sealable again.
func TestSealSkipsHotBlocks(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE h (id INTEGER, v INTEGER)")
	for i := 0; i < segBlockSlots; i++ {
		db.MustExec("INSERT INTO h VALUES (?, ?)", i, i)
	}
	// A second version on one slot blocks sealing of its block.
	db.MustExec("UPDATE h SET v = -1 WHERE id = 5")
	if sealed := db.Seal(); sealed != 0 {
		t.Fatalf("Seal() sealed %d rows despite a version chain, want 0", sealed)
	}
	db.Vacuum()
	if sealed := db.Seal(); sealed != segBlockSlots {
		t.Fatalf("Seal() after vacuum sealed %d rows, want %d", sealed, segBlockSlots)
	}
}

// TestSealedSnapshotIsolation: a snapshot opened before DML keeps reading
// the pre-DML state even though the DML unsealed the segment mid-scan.
func TestSealedSnapshotIsolation(t *testing.T) {
	db := sealedTestDB(t, 1)
	rows, err := db.QueryRows(context.Background(), "SELECT id, a FROM s WHERE id < 3")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got [][]string
	first := true
	for rows.Next() {
		r := rows.Row()
		got = append(got, []string{r[0].AsText(), r[1].AsText()})
		if first {
			first = false
			// Unseals the covering segment under the open cursor.
			db.MustExec("UPDATE s SET a = 999 WHERE id = 2")
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2][1] == "999" {
		t.Fatalf("snapshot read saw post-DML state: %v", got)
	}
	if q := queryStrings(t, db, "SELECT a FROM s WHERE id = 2"); q[0][0] != "999" {
		t.Fatalf("fresh read = %q, want 999", q[0][0])
	}
}

// FuzzSegmentCodec drives the segment codecs from two directions: random
// column data must round-trip seal->decode bit-exactly, and arbitrary
// bytes fed straight into every decoder must fail with a typed error or
// succeed — never panic, never over-read.
func FuzzSegmentCodec(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 255}, uint8(0), uint8(4))
	f.Add([]byte("hello world dictionary"), uint8(3), uint8(8))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x01}, uint8(1), uint8(16))
	f.Add([]byte{0xFF, 0x00, 0x42}, uint8(2), uint8(3))
	f.Add([]byte{}, uint8(4), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, enc uint8, nrows uint8) {
		n := int(nrows)%segBlockSlots + 1

		// Direction 1: arbitrary bytes through every decoder.
		dst := make([]Value, n)
		for e := byte(0); e <= segEncBool+1; e++ {
			c := segCol{enc: e, kinds: kmInt | kmNull, data: data}
			if err := c.decode(n, dst); err != nil && CodeOf(err) != ErrInternal {
				t.Fatalf("enc=%d: decode error %v, want ErrInternal or nil", e, err)
			}
		}

		// Direction 2: derive a column from the fuzz bytes deterministically
		// and round-trip it. enc biases the kind mix so single-kind
		// encodings and the raw fallback all get coverage.
		vals := make([]Value, n)
		for i := range vals {
			var b byte
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			sel := int(enc)%6 + 1
			switch (int(b) + i) % 8 % sel {
			case 1:
				vals[i] = Float(math.Float64frombits(uint64(b)<<56 | uint64(i)))
			case 2:
				end := i % (len(data) + 1)
				vals[i] = Text(string(data[:end]))
			case 3:
				vals[i] = Bool(b&1 == 1)
			case 4:
				vals[i] = Null
			case 5:
				vals[i] = Int(math.MinInt64 + int64(b))
			default:
				vals[i] = Int(int64(b)*2654435761 - int64(i)<<40)
			}
		}
		c := sealColumn(vals)
		got := make([]Value, n)
		if err := c.decode(n, got); err != nil {
			t.Fatalf("round-trip decode failed (enc=%d): %v", c.enc, err)
		}
		for i := range vals {
			if !segValuesEqual(vals[i], got[i]) {
				t.Fatalf("enc=%d: value %d round-tripped %v -> %v", c.enc, i, vals[i], got[i])
			}
		}
	})
}
