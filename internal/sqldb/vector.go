package sqldb

import "strings"

// This file implements the vectorized expression engine: column vectors,
// selection bitsets with exact SQL three-valued logic, and the kernel
// compiler that turns WHERE/projection/aggregation expressions into
// batch-at-a-time functions. The compiler is the vector twin of
// compile.go: every kernel either replicates the row engine's exact
// branches (the type-specialized int/int paths mirror Value.Compare and
// evalArith case by case) or simply calls the row engine's own scalar
// functions per element (the generic paths) — so row-vs-vector
// equivalence holds by construction and is pinned by the property suites.
// Shapes the compiler cannot specialize (subqueries, UDFs, CASE, grouped
// references) report not-compilable and the plan falls back to the
// row-at-a-time tree (vecops.go).

// vecBatchRows is the vectorized executor's batch size. It equals
// segBlockSlots (and morselSize) so one sealed block decodes into exactly
// one batch.
const vecBatchRows = segBlockSlots

// debugBreakVectorKernel deliberately corrupts the specialized comparison
// kernels (tests only). The metamorphic and equivalence suites must fail
// when it is set — proof that they exercise the vectorized path.
var debugBreakVectorKernel = false

// vecBitset is a bitmap over one batch's rows.
type vecBitset [vecBatchRows / 64]uint64

func (s *vecBitset) set(i int)      { s[i>>6] |= 1 << uint(i&63) }
func (s *vecBitset) get(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

// maskTo returns a bitset with bits [0, n) set.
func maskTo(n int) vecBitset {
	var m vecBitset
	for w := 0; w < n>>6; w++ {
		m[w] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		m[n>>6] = 1<<uint(r) - 1
	}
	return m
}

// count returns the number of set bits among [0, n).
func (s *vecBitset) count(n int) int {
	c := 0
	for i := 0; i < n; i++ {
		if s.get(i) {
			c++
		}
	}
	return c
}

// vecCol is one column of one batch: either a broadcast constant or a
// dense slice of the batch's values, plus the mask of kinds present —
// what the kernels dispatch on.
type vecCol struct {
	konst bool
	c     Value
	vals  []Value
	kinds uint16
}

func (v *vecCol) at(i int) Value {
	if v.konst {
		return v.c
	}
	return v.vals[i]
}

// setVals points the column at a freshly filled slice and recomputes the
// kind mask.
func (v *vecCol) setVals(vals []Value) {
	v.konst = false
	v.vals = vals
	var k uint16
	for i := range vals {
		k |= 1 << uint16(vals[i].kind)
	}
	v.kinds = k
}

func constCol(val Value) vecCol {
	return vecCol{konst: true, c: val, kinds: 1 << uint16(val.kind)}
}

// vecBatch is up to vecBatchRows rows in column-major form. Heap-backed
// batches keep the source rows (emission hands back the original Row, as
// the row scan does) and populate only the columns the kernels read;
// sealed-block batches decode every column and rows is nil.
type vecBatch struct {
	n    int
	cols []vecCol
	rows []Row
	sel  vecBitset // rows surviving the filter
	// pre[i] counts the invisible versions the gather stepped over
	// immediately before row i — replayed at emission time so tombstone
	// accounting is bit-identical to the row scan's lazy walk.
	pre []int32
	// seq increments per loaded batch; downstream kernel caches key their
	// per-batch results on it.
	seq uint64
}

// ---------------------------------------------------------------------------
// Compiled kernels

// vecExprFn evaluates an expression over a whole batch.
type vecExprFn func(b *vecBatch) *vecCol

// vecPredFn evaluates a predicate over a whole batch into (true, null)
// bitsets; rows in neither are false. Exactly one of the three holds per
// row in [0, b.n).
type vecPredFn func(b *vecBatch, t, nl *vecBitset)

// vecCompiler compiles expressions against one base table's schema. It
// records which column ordinals the compiled kernels read, so the scan
// gathers only those.
type vecCompiler struct {
	env  *evalEnv // resolution scope over the scan columns (no outer)
	need []bool
}

func newVecCompiler(cols []colInfo, db *Database, params []Value) *vecCompiler {
	return &vecCompiler{
		env:  newEvalEnv(cols, db, params, nil, nil),
		need: make([]bool, len(cols)),
	}
}

// compileExpr returns a batch kernel for e, or ok=false when e's shape is
// not vector-compilable (the plan then falls back to the row tree). It is
// only ever called after the row compiler accepted the same expression,
// so resolution cannot fail here in ways the row path would not surface.
func (vc *vecCompiler) compileExpr(e Expr) (vecExprFn, bool) {
	switch t := e.(type) {
	case *Literal:
		c := constCol(t.Val)
		return func(*vecBatch) *vecCol { return &c }, true
	case *Param:
		if t.Index >= len(vc.env.params) {
			return nil, false
		}
		c := constCol(vc.env.params[t.Index])
		return func(*vecBatch) *vecCol { return &c }, true
	case *ColumnRef:
		i, owner, err := vc.env.resolve(t)
		if err != nil || owner != vc.env {
			return nil, false
		}
		vc.need[i] = true
		return func(b *vecBatch) *vecCol { return &b.cols[i] }, true
	case *BinaryOp:
		switch t.Op {
		case "+", "-", "*", "/", "%":
			l, ok := vc.compileExpr(t.Left)
			if !ok {
				return nil, false
			}
			r, ok := vc.compileExpr(t.Right)
			if !ok {
				return nil, false
			}
			op := t.Op
			var out vecCol
			scratch := make([]Value, vecBatchRows)
			return func(b *vecBatch) *vecCol {
				arithVec(op, l(b), r(b), b.n, scratch)
				out.setVals(scratch[:b.n])
				return &out
			}, true
		case "||":
			l, ok := vc.compileExpr(t.Left)
			if !ok {
				return nil, false
			}
			r, ok := vc.compileExpr(t.Right)
			if !ok {
				return nil, false
			}
			var out vecCol
			scratch := make([]Value, vecBatchRows)
			return func(b *vecBatch) *vecCol {
				lv, rv := l(b), r(b)
				for i := 0; i < b.n; i++ {
					a, c := lv.at(i), rv.at(i)
					if a.kind == KindNull || c.kind == KindNull {
						scratch[i] = Null
					} else {
						scratch[i] = Text(a.AsText() + c.AsText())
					}
				}
				out.setVals(scratch[:b.n])
				return &out
			}, true
		default:
			// Comparisons, AND/OR, LIKE: compile as a predicate and
			// materialise its three-valued result, exactly as the row
			// closure returns Bool/NULL.
			return vc.predAsExpr(e)
		}
	case *UnaryOp:
		switch t.Op {
		case "-":
			sub, ok := vc.compileExpr(t.Expr)
			if !ok {
				return nil, false
			}
			var out vecCol
			scratch := make([]Value, vecBatchRows)
			return func(b *vecBatch) *vecCol {
				v := sub(b)
				for i := 0; i < b.n; i++ {
					sv := v.at(i)
					switch {
					case sv.kind == KindNull:
						scratch[i] = Null
					case sv.kind == KindInt:
						scratch[i] = Int(-sv.AsInt())
					default:
						scratch[i] = Float(-sv.AsFloat())
					}
				}
				out.setVals(scratch[:b.n])
				return &out
			}, true
		case "NOT":
			return vc.predAsExpr(e)
		default:
			return nil, false
		}
	case *IsNull, *Between, *InList:
		return vc.predAsExpr(e)
	case *CastExpr:
		sub, ok := vc.compileExpr(t.Expr)
		if !ok {
			return nil, false
		}
		typ := t.Type
		var out vecCol
		scratch := make([]Value, vecBatchRows)
		return func(b *vecBatch) *vecCol {
			v := sub(b)
			for i := 0; i < b.n; i++ {
				scratch[i] = castValue(v.at(i), typ)
			}
			out.setVals(scratch[:b.n])
			return &out
		}, true
	default:
		// FuncCall (incl. UDFs), CaseExpr, Subquery, ExistsExpr, Star,
		// aggregate contexts: row fallback.
		return nil, false
	}
}

// predAsExpr materialises a predicate's three-valued result as a Bool/NULL
// column.
func (vc *vecCompiler) predAsExpr(e Expr) (vecExprFn, bool) {
	p, ok := vc.compilePred(e)
	if !ok {
		return nil, false
	}
	var out vecCol
	scratch := make([]Value, vecBatchRows)
	return func(b *vecBatch) *vecCol {
		var t, nl vecBitset
		p(b, &t, &nl)
		for i := 0; i < b.n; i++ {
			switch {
			case nl.get(i):
				scratch[i] = Null
			default:
				scratch[i] = Bool(t.get(i))
			}
		}
		out.setVals(scratch[:b.n])
		return &out
	}, true
}

// compilePred returns a three-valued predicate kernel for e, or ok=false.
func (vc *vecCompiler) compilePred(e Expr) (vecPredFn, bool) {
	switch t := e.(type) {
	case *BinaryOp:
		switch t.Op {
		case "AND":
			l, ok := vc.compilePred(t.Left)
			if !ok {
				return nil, false
			}
			r, ok := vc.compilePred(t.Right)
			if !ok {
				return nil, false
			}
			return func(b *vecBatch, t0, nl *vecBitset) {
				var t1, n1, t2, n2 vecBitset
				l(b, &t1, &n1)
				r(b, &t2, &n2)
				m := maskTo(b.n)
				for w := range t0 {
					f := (m[w] &^ t1[w] &^ n1[w]) | (m[w] &^ t2[w] &^ n2[w])
					t0[w] = t1[w] & t2[w]
					nl[w] = m[w] &^ t0[w] &^ f
				}
			}, true
		case "OR":
			l, ok := vc.compilePred(t.Left)
			if !ok {
				return nil, false
			}
			r, ok := vc.compilePred(t.Right)
			if !ok {
				return nil, false
			}
			return func(b *vecBatch, t0, nl *vecBitset) {
				var t1, n1, t2, n2 vecBitset
				l(b, &t1, &n1)
				r(b, &t2, &n2)
				m := maskTo(b.n)
				for w := range t0 {
					f := (m[w] &^ t1[w] &^ n1[w]) & (m[w] &^ t2[w] &^ n2[w])
					t0[w] = t1[w] | t2[w]
					nl[w] = m[w] &^ t0[w] &^ f
				}
			}, true
		case "=", "!=", "<", "<=", ">", ">=":
			l, ok := vc.compileExpr(t.Left)
			if !ok {
				return nil, false
			}
			r, ok := vc.compileExpr(t.Right)
			if !ok {
				return nil, false
			}
			op := t.Op
			return func(b *vecBatch, t0, nl *vecBitset) {
				cmpVec(op, l(b), r(b), b.n, t0, nl)
			}, true
		case "LIKE":
			l, ok := vc.compileExpr(t.Left)
			if !ok {
				return nil, false
			}
			// The literal-pattern shape is lowered once, like compile.go.
			if lit, okLit := t.Right.(*Literal); okLit && lit.Val.Kind() == KindText {
				pattern := strings.ToLower(lit.Val.AsText())
				return func(b *vecBatch, t0, nl *vecBitset) {
					lv := l(b)
					for i := 0; i < b.n; i++ {
						v := lv.at(i)
						if v.kind == KindNull {
							nl.set(i)
						} else if likeRec(pattern, strings.ToLower(v.AsText())) {
							t0.set(i)
						}
					}
				}, true
			}
			r, ok := vc.compileExpr(t.Right)
			if !ok {
				return nil, false
			}
			return func(b *vecBatch, t0, nl *vecBitset) {
				lv, rv := l(b), r(b)
				for i := 0; i < b.n; i++ {
					a, p := lv.at(i), rv.at(i)
					if a.kind == KindNull || p.kind == KindNull {
						nl.set(i)
					} else if likeMatch(p.AsText(), a.AsText()) {
						t0.set(i)
					}
				}
			}, true
		default:
			return vc.exprAsPred(e)
		}
	case *UnaryOp:
		if t.Op != "NOT" {
			return vc.exprAsPred(e)
		}
		sub, ok := vc.compilePred(t.Expr)
		if !ok {
			return nil, false
		}
		return func(b *vecBatch, t0, nl *vecBitset) {
			var t1, n1 vecBitset
			sub(b, &t1, &n1)
			m := maskTo(b.n)
			for w := range t0 {
				t0[w] = m[w] &^ t1[w] &^ n1[w] // NOT swaps true and false
				nl[w] = n1[w]
			}
		}, true
	case *IsNull:
		sub, ok := vc.compileExpr(t.Expr)
		if !ok {
			return nil, false
		}
		not := t.Not
		return func(b *vecBatch, t0, _ *vecBitset) {
			v := sub(b)
			for i := 0; i < b.n; i++ {
				if (v.at(i).kind == KindNull) != not {
					t0.set(i)
				}
			}
		}, true
	case *Between:
		ce, ok := vc.compileExpr(t.Expr)
		if !ok {
			return nil, false
		}
		clo, ok := vc.compileExpr(t.Lo)
		if !ok {
			return nil, false
		}
		chi, ok := vc.compileExpr(t.Hi)
		if !ok {
			return nil, false
		}
		not := t.Not
		return func(b *vecBatch, t0, nl *vecBitset) {
			v, lo, hi := ce(b), clo(b), chi(b)
			for i := 0; i < b.n; i++ {
				vv, lv, hv := v.at(i), lo.at(i), hi.at(i)
				if vv.kind == KindNull || lv.kind == KindNull || hv.kind == KindNull {
					nl.set(i)
					continue
				}
				in := vv.Compare(lv) >= 0 && vv.Compare(hv) <= 0
				if in != not {
					t0.set(i)
				}
			}
		}, true
	case *InList:
		if t.Sub != nil {
			return nil, false // IN (SELECT ...): row fallback
		}
		needle, ok := vc.compileExpr(t.Expr)
		if !ok {
			return nil, false
		}
		list := make([]vecExprFn, len(t.List))
		for i, le := range t.List {
			c, ok := vc.compileExpr(le)
			if !ok {
				return nil, false
			}
			list[i] = c
		}
		not := t.Not
		return func(b *vecBatch, t0, nl *vecBitset) {
			nv := needle(b)
			elems := make([]*vecCol, len(list))
			for j, c := range list {
				elems[j] = c(b)
			}
			for i := 0; i < b.n; i++ {
				v := nv.at(i)
				if v.kind == KindNull {
					nl.set(i)
					continue
				}
				match, sawNull := false, false
				for _, el := range elems {
					hv := el.at(i)
					if hv.kind == KindNull {
						sawNull = true
						continue
					}
					if v.Compare(hv) == 0 {
						match = true
						break
					}
				}
				switch {
				case match:
					if !not {
						t0.set(i)
					}
				case sawNull:
					nl.set(i)
				default:
					if not {
						t0.set(i)
					}
				}
			}
		}, true
	default:
		return vc.exprAsPred(e)
	}
}

// exprAsPred evaluates e as a value and converts to SQL truth, exactly
// like filterOp does with an arbitrary compiled expression: NULL stays
// NULL, anything else is AsBool.
func (vc *vecCompiler) exprAsPred(e Expr) (vecPredFn, bool) {
	sub, ok := vc.compileExpr(e)
	if !ok {
		return nil, false
	}
	return func(b *vecBatch, t0, nl *vecBitset) {
		v := sub(b)
		for i := 0; i < b.n; i++ {
			sv := v.at(i)
			switch {
			case sv.kind == KindNull:
				nl.set(i)
			case sv.AsBool():
				t0.set(i)
			}
		}
	}, true
}

// ---------------------------------------------------------------------------
// Kernels

func cmpTest(op string) func(int) bool {
	switch op {
	case "=":
		return func(c int) bool { return c == 0 }
	case "!=":
		return func(c int) bool { return c != 0 }
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	default:
		return func(c int) bool { return c >= 0 }
	}
}

// cmpVec compares two columns three-valuedly. The all-int and all-float
// fast paths replicate Value.Compare's exact branches for those kinds
// (exact int compare; float compare by < / >); every other kind mix calls
// Value.Compare itself.
func cmpVec(op string, l, r *vecCol, n int, t, nl *vecBitset) {
	if l.kinds == kmInt && r.kinds == kmInt {
		switch {
		case debugBreakVectorKernel:
			// Deliberately inverted kernel for suite-sensitivity tests.
			test := cmpTest(op)
			for i := 0; i < n; i++ {
				if !test(compareInts(l.at(i).i, r.at(i).i)) {
					t.set(i)
				}
			}
		case op == "=":
			for i := 0; i < n; i++ {
				if l.at(i).i == r.at(i).i {
					t.set(i)
				}
			}
		case op == "!=":
			for i := 0; i < n; i++ {
				if l.at(i).i != r.at(i).i {
					t.set(i)
				}
			}
		case op == "<":
			for i := 0; i < n; i++ {
				if l.at(i).i < r.at(i).i {
					t.set(i)
				}
			}
		case op == "<=":
			for i := 0; i < n; i++ {
				if l.at(i).i <= r.at(i).i {
					t.set(i)
				}
			}
		case op == ">":
			for i := 0; i < n; i++ {
				if l.at(i).i > r.at(i).i {
					t.set(i)
				}
			}
		default: // ">="
			for i := 0; i < n; i++ {
				if l.at(i).i >= r.at(i).i {
					t.set(i)
				}
			}
		}
		return
	}
	test := cmpTest(op)
	if debugBreakVectorKernel {
		orig := test
		test = func(c int) bool { return !orig(c) }
	}
	if l.kinds == kmFloat && r.kinds == kmFloat {
		for i := 0; i < n; i++ {
			a, b := l.at(i).f, r.at(i).f
			c := 0
			switch {
			case a < b:
				c = -1
			case a > b:
				c = 1
			}
			if test(c) {
				t.set(i)
			}
		}
		return
	}
	if (l.kinds|r.kinds)&kmNull == 0 {
		for i := 0; i < n; i++ {
			if test(l.at(i).Compare(r.at(i))) {
				t.set(i)
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		lv, rv := l.at(i), r.at(i)
		if lv.kind == KindNull || rv.kind == KindNull {
			nl.set(i)
			continue
		}
		if test(lv.Compare(rv)) {
			t.set(i)
		}
	}
}

func compareInts(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// arithVec evaluates l op r into out[:n]. The all-int fast path
// replicates evalArith's bothInt branch exactly (wrapping + - *, /0 and
// %0 yield NULL); everything else calls evalArith per element, which is
// the row engine's own function.
func arithVec(op string, l, r *vecCol, n int, out []Value) {
	if l.kinds == kmInt && r.kinds == kmInt {
		switch op {
		case "+":
			for i := 0; i < n; i++ {
				out[i] = Int(l.at(i).i + r.at(i).i)
			}
		case "-":
			for i := 0; i < n; i++ {
				out[i] = Int(l.at(i).i - r.at(i).i)
			}
		case "*":
			for i := 0; i < n; i++ {
				out[i] = Int(l.at(i).i * r.at(i).i)
			}
		case "/":
			for i := 0; i < n; i++ {
				if d := r.at(i).i; d == 0 {
					out[i] = Null
				} else {
					out[i] = Int(l.at(i).i / d)
				}
			}
		case "%":
			for i := 0; i < n; i++ {
				if d := r.at(i).i; d == 0 {
					out[i] = Null
				} else {
					out[i] = Int(l.at(i).i % d)
				}
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		v, _ := evalArith(op, l.at(i), r.at(i))
		out[i] = v
	}
}
