package sqldb

import (
	"context"
	"testing"
	"time"
)

// Tests for the durability layer's happy paths and typed-error edges:
// encoding round-trips, reopen recovery, fsync policies (observed through
// memFS's durable-prefix model), checkpointing, torn-tail truncation,
// LoadScript atomicity, and the ErrIO surface under injected ENOSPC /
// short-write / fsync failures. The exhaustive crash-point matrix lives
// in wal_crash_test.go.

// openWalDB opens a durable database named "db" on the given filesystem.
func openWalDB(t testing.TB, fs walFS, opts DurabilityOptions) *Database {
	t.Helper()
	opts.fs = fs
	db, err := Open("db", WithDurability("", opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func closeDB(t testing.TB, db *Database) {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// failNext arms the injection point n mutating operations from now.
func (c *crashFS) failNext(n int) {
	c.mu.Lock()
	c.failAt = c.op + n
	c.mu.Unlock()
}

func TestWalOpEncodingRoundTrip(t *testing.T) {
	ops := []walOp{
		{kind: 'S', sql: "CREATE TABLE t (a INTEGER)"},
		{kind: 'I', table: "t", row: Row{Int(-7), Float(1.5), Text("héllo"), Bool(true), Null}},
		{kind: 'D', table: "t", row: Row{Text(""), Int(1 << 62), Bool(false)}},
		{kind: 'U', table: "películas", row: Row{Int(1), Text("old")}, row2: Row{Int(1), Text("new\x00bytes")}},
	}
	var buf []byte
	for _, op := range ops {
		buf = appendWalOp(buf, op)
	}
	d := &walDecoder{b: buf}
	for i, want := range ops {
		got := d.op()
		if d.err != nil {
			t.Fatalf("op %d: decode error: %v", i, d.err)
		}
		if got.kind != want.kind || got.table != want.table || got.sql != want.sql {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
		if !rowsExactEqual(got.row, want.row) || !rowsExactEqual(got.row2, want.row2) {
			t.Fatalf("op %d: rows differ: got %v/%v want %v/%v", i, got.row, got.row2, want.row, want.row2)
		}
	}
	if d.off != len(buf) {
		t.Fatalf("decoder consumed %d of %d bytes", d.off, len(buf))
	}
	// Truncated buffers must fail cleanly, never panic.
	for cut := 0; cut < len(buf); cut++ {
		d := &walDecoder{b: buf[:cut]}
		for d.err == nil && d.off < cut {
			d.op()
		}
	}
}

func TestOpenRequiresPath(t *testing.T) {
	if _, err := Open(""); CodeOf(err) != ErrMisuse {
		t.Fatalf("Open(\"\") error = %v, want ErrMisuse", err)
	}
}

func TestCheckpointWithoutDurability(t *testing.T) {
	db := NewDatabase()
	if err := db.Checkpoint(); CodeOf(err) != ErrMisuse {
		t.Fatalf("Checkpoint on in-memory db = %v, want ErrMisuse", err)
	}
}

// TestReopenRecoversCommittedState is the core durability contract: after
// a mixed workload (DDL, autocommit DML, an explicit transaction, a
// rolled-back transaction), a reopen reproduces the exact committed state.
func TestReopenRecoversCommittedState(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{})
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, s TEXT)")
	db.MustExec("CREATE INDEX idx_t_k ON t (k)")
	for i := 0; i < 20; i++ {
		db.MustExec("INSERT INTO t VALUES (?, ?, ?)", i, i%3, "row")
	}
	db.MustExec("UPDATE t SET s = 'upd' WHERE k = 1")
	db.MustExec("DELETE FROM t WHERE id >= 15")

	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO t VALUES (100, 9, 'txn'); UPDATE t SET k = 9 WHERE id = 0"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rb := db.Begin()
	if _, err := rb.Exec("DELETE FROM t; CREATE TABLE gone (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Rollback(); err != nil {
		t.Fatal(err)
	}

	want := dumpString(t, db)
	closeDB(t, db)

	db2 := openWalDB(t, fs, DurabilityOptions{})
	defer closeDB(t, db2)
	if got := dumpString(t, db2); got != want {
		t.Errorf("recovered dump differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if n := db2.Stats().RecoveredTxns; n == 0 {
		t.Errorf("RecoveredTxns = 0, want > 0")
	}
	// The rolled-back transaction (including its DDL) must not resurface.
	if _, err := db2.Query("SELECT * FROM gone"); CodeOf(err) != ErrNoTable {
		t.Errorf("rolled-back CREATE TABLE visible after recovery: err=%v", err)
	}
}

// TestRolledBackTxnWritesNothing: rollback must not touch the log at all.
func TestRolledBackTxnWritesNothing(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{})
	defer closeDB(t, db)
	db.MustExec("CREATE TABLE t (a INTEGER)")
	before, err := fs.ReadFile("db/wal-0.log")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO t VALUES (1); DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	after, err := fs.ReadFile("db/wal-0.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Errorf("rollback appended %d bytes to the WAL", len(after)-len(before))
	}
}

func TestSyncPolicyAlways(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{Sync: SyncAlways})
	defer closeDB(t, db)
	db.MustExec("CREATE TABLE t (a INTEGER)")
	for i := 0; i < 3; i++ {
		db.MustExec("INSERT INTO t VALUES (?)", i)
		data, _ := fs.ReadFile("db/wal-0.log")
		if synced := fs.syncedLen("db/wal-0.log"); synced != len(data) {
			t.Fatalf("after commit %d: synced %d of %d bytes", i, synced, len(data))
		}
	}
}

func TestSyncPolicyOff(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{Sync: SyncOff})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")
	data, _ := fs.ReadFile("db/wal-0.log")
	if synced := fs.syncedLen("db/wal-0.log"); synced != len(walMagic) {
		t.Fatalf("SyncOff synced %d bytes mid-run, want only the %d-byte header", synced, len(walMagic))
	}
	// A clean close still makes everything durable.
	closeDB(t, db)
	if synced := fs.syncedLen("db/wal-0.log"); synced != len(data) {
		t.Fatalf("after Close: synced %d of %d bytes", synced, len(data))
	}
}

func TestSyncPolicyInterval(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{Sync: SyncInterval, SyncInterval: time.Millisecond})
	defer closeDB(t, db)
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")
	data, _ := fs.ReadFile("db/wal-0.log")
	deadline := time.Now().Add(5 * time.Second)
	for fs.syncedLen("db/wal-0.log") != len(data) {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never caught up: synced %d of %d", fs.syncedLen("db/wal-0.log"), len(data))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCheckpointRetiresLog(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{CheckpointBytes: -1})
	db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO t VALUES (?, 'x')", i)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if n := db.Stats().Checkpoints; n != 1 {
		t.Errorf("Checkpoints = %d, want 1", n)
	}
	names, _ := fs.ReadDir("db")
	var got []string
	got = append(got, names...)
	if len(got) != 2 || got[0] != "snap-1.sql" || got[1] != "wal-1.log" {
		t.Fatalf("files after checkpoint = %v, want [snap-1.sql wal-1.log]", got)
	}
	if data, _ := fs.ReadFile("db/wal-1.log"); len(data) != len(walMagic) {
		t.Errorf("new log is %d bytes, want bare %d-byte header", len(data), len(walMagic))
	}
	// Commits after the checkpoint land in the new generation; recovery
	// stitches snapshot + new log together.
	db.MustExec("INSERT INTO t VALUES (100, 'post-checkpoint')")
	want := dumpString(t, db)
	closeDB(t, db)

	db2 := openWalDB(t, fs, DurabilityOptions{})
	defer closeDB(t, db2)
	if got := dumpString(t, db2); got != want {
		t.Errorf("post-checkpoint recovery differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	fs := newMemFS()
	// Threshold of one byte: every commit qualifies; the background
	// checkpoint is single-flight so some commits coalesce.
	db := openWalDB(t, fs, DurabilityOptions{CheckpointBytes: 1})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	for i := 0; i < 50; i++ {
		db.MustExec("INSERT INTO t VALUES (?)", i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("automatic checkpoint never fired")
		}
		time.Sleep(time.Millisecond)
	}
	want := dumpString(t, db)
	closeDB(t, db)
	db2 := openWalDB(t, fs, DurabilityOptions{})
	defer closeDB(t, db2)
	if got := dumpString(t, db2); got != want {
		t.Errorf("recovery after auto-checkpoint differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestTornTailDropped(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")
	want := dumpString(t, db)
	db.MustExec("INSERT INTO t VALUES (2)")
	closeDB(t, db)

	// Tear the final record: cut three bytes off the log's tail.
	fs.mu.Lock()
	f := fs.files["db/wal-0.log"]
	f.data = f.data[:len(f.data)-3]
	f.synced = len(f.data)
	fs.mu.Unlock()

	db2 := openWalDB(t, fs, DurabilityOptions{})
	if got := dumpString(t, db2); got != want {
		t.Errorf("torn-tail recovery differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if n := db2.Stats().TornTailsDropped; n != 1 {
		t.Errorf("TornTailsDropped = %d, want 1", n)
	}
	// The torn bytes were truncated away, so appends resume on a record
	// boundary and a further reopen is clean.
	db2.MustExec("INSERT INTO t VALUES (3)")
	want2 := dumpString(t, db2)
	closeDB(t, db2)
	db3 := openWalDB(t, fs, DurabilityOptions{})
	defer closeDB(t, db3)
	if got := dumpString(t, db3); got != want2 {
		t.Errorf("post-repair recovery differs:\n--- want ---\n%s--- got ---\n%s", want2, got)
	}
	if n := db3.Stats().TornTailsDropped; n != 0 {
		t.Errorf("TornTailsDropped after repair = %d, want 0", n)
	}
}

func TestCorruptHeaderRejected(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	closeDB(t, db)
	fs.mu.Lock()
	fs.files["db/wal-0.log"].data[0] = 'X'
	fs.mu.Unlock()
	if _, err := Open("db", WithDurability("", DurabilityOptions{fs: fs})); CodeOf(err) != ErrIO {
		t.Fatalf("corrupt magic: err = %v, want ErrIO", err)
	}
}

// TestENOSPCAtCommit: a failed append returns typed ErrIO, the in-memory
// state stays consistent and queryable, later commits fail fast, and a
// reopen recovers exactly the durable prefix.
func TestENOSPCAtCommit(t *testing.T) {
	fs := newCrashFS(0, faultENOSPC)
	db := openWalDB(t, fs, DurabilityOptions{})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	fs.failNext(1) // next mutating op is the INSERT's commit append
	_, err := db.Exec("INSERT INTO t VALUES (1)")
	if CodeOf(err) != ErrIO {
		t.Fatalf("commit under ENOSPC: err = %v, want ErrIO", err)
	}
	// The commit applied in memory; only durability was lost.
	if got := queryStrings(t, db, "SELECT a FROM t"); len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("in-memory state after failed commit: %v", got)
	}
	// Poisoned: every later commit and checkpoint fails fast.
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); CodeOf(err) != ErrIO {
		t.Fatalf("second commit after poison: err = %v, want ErrIO", err)
	}
	if err := db.Checkpoint(); CodeOf(err) != ErrIO {
		t.Fatalf("checkpoint after poison: err = %v, want ErrIO", err)
	}
	// Reads still work.
	if got := queryStrings(t, db, "SELECT COUNT(*) FROM t"); got[0][0] != "2" {
		t.Fatalf("reads after poison: %v", got)
	}
	_ = db.Close()

	db2 := openWalDB(t, fs.afterCrash(), DurabilityOptions{})
	defer closeDB(t, db2)
	if got := queryStrings(t, db2, "SELECT COUNT(*) FROM t"); got[0][0] != "0" {
		t.Fatalf("reopen after ENOSPC: table has %v rows, want 0 (only DDL was durable)", got[0][0])
	}
}

func TestShortWriteAtCommit(t *testing.T) {
	fs := newCrashFS(0, faultShortWrite)
	db := openWalDB(t, fs, DurabilityOptions{})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")
	want := dumpString(t, db)
	fs.failNext(1)
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); CodeOf(err) != ErrIO {
		t.Fatalf("short write: err = %v, want ErrIO", err)
	}
	_ = db.Close()
	// The half-written record was truncated back to the last boundary, so
	// reopen recovers the pre-fault state without even seeing a torn tail.
	db2 := openWalDB(t, fs.afterCrash(), DurabilityOptions{})
	defer closeDB(t, db2)
	if got := dumpString(t, db2); got != want {
		t.Errorf("short-write recovery differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if n := db2.Stats().TornTailsDropped; n != 0 {
		t.Errorf("TornTailsDropped = %d, want 0 (tail was repaired at write time)", n)
	}
}

func TestFsyncErrorAtCommit(t *testing.T) {
	fs := newCrashFS(0, faultENOSPC)
	db := openWalDB(t, fs, DurabilityOptions{})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	fs.failNext(2) // write succeeds, the fsync after it fails
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); CodeOf(err) != ErrIO {
		t.Fatalf("fsync failure: err = %v, want ErrIO", err)
	}
	if got := queryStrings(t, db, "SELECT COUNT(*) FROM t"); got[0][0] != "1" {
		t.Fatalf("in-memory state after fsync failure: %v", got)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); CodeOf(err) != ErrIO {
		t.Fatalf("commit after fsync poison: err = %v, want ErrIO", err)
	}
	_ = db.Close()
	// The record's bytes reached the file even though their durability was
	// unknown; in this deterministic model they survive, and recovery
	// accepts them (they are whole and checksummed).
	db2 := openWalDB(t, fs.afterCrash(), DurabilityOptions{})
	defer closeDB(t, db2)
	if got := queryStrings(t, db2, "SELECT COUNT(*) FROM t"); got[0][0] != "1" {
		t.Fatalf("reopen after fsync failure: %v rows, want 1", got[0][0])
	}
}

func TestRecoveryHonorsContextCancel(t *testing.T) {
	fs := newMemFS()
	db := openWalDB(t, fs, DurabilityOptions{})
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")
	closeDB(t, db)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OpenContext(ctx, "db", WithDurability("", DurabilityOptions{fs: fs}))
	if CodeOf(err) != ErrCanceled {
		t.Fatalf("canceled recovery: err = %v, want ErrCanceled", err)
	}
	// The same store still opens fine under a live context.
	db2, err := Open("db", WithDurability("", DurabilityOptions{fs: fs}))
	if err != nil {
		t.Fatalf("reopen after canceled recovery: %v", err)
	}
	closeDB(t, db2)
}

// TestOpenOSFS exercises the real-filesystem implementation end to end:
// create, commit, checkpoint, reopen from disk.
func TestOpenOSFS(t *testing.T) {
	dir := t.TempDir() + "/db"
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
	db.MustExec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	db.MustExec("DELETE FROM t WHERE a = 1")
	want := dumpString(t, db)
	closeDB(t, db)

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer closeDB(t, db2)
	if got := dumpString(t, db2); got != want {
		t.Errorf("osFS recovery differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestLoadScriptAtomic pins the satellite: a script that fails mid-way
// leaves the database bit-identical to before, including DDL.
func TestLoadScriptAtomic(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")
	before := dumpString(t, db)

	err := db.LoadScript(`
		INSERT INTO t VALUES (2);
		CREATE TABLE half (x INTEGER);
		INSERT INTO half VALUES (1);
		INSERT INTO nosuch VALUES (1);
	`)
	if CodeOf(err) != ErrNoTable {
		t.Fatalf("LoadScript error = %v, want ErrNoTable", err)
	}
	if after := dumpString(t, db); after != before {
		t.Errorf("failed LoadScript mutated the database:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	if _, err := db.Query("SELECT * FROM half"); CodeOf(err) != ErrNoTable {
		t.Errorf("table from failed script survives: err=%v", err)
	}

	// And a script that succeeds applies everything.
	if err := db.LoadScript("CREATE TABLE ok (x INTEGER); INSERT INTO ok VALUES (1);"); err != nil {
		t.Fatalf("LoadScript: %v", err)
	}
	if got := queryStrings(t, db, "SELECT x FROM ok"); len(got) != 1 {
		t.Errorf("successful script rows: %v", got)
	}
}

// TestDDLRollback pins the transactional-DDL semantics the WAL relies on:
// CREATE TABLE / CREATE INDEX / DROP TABLE inside a transaction are
// undone by rollback.
func TestDDLRollback(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE keep (a INTEGER)")
	db.MustExec("INSERT INTO keep VALUES (1)")
	before := dumpString(t, db)

	tx := db.Begin()
	if _, err := tx.Exec("CREATE TABLE temp (x INTEGER); INSERT INTO temp VALUES (1); CREATE INDEX idx_keep_a ON keep (a); DROP TABLE keep"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if after := dumpString(t, db); after != before {
		t.Errorf("DDL rollback not clean:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	if got := queryStrings(t, db, "SELECT a FROM keep"); len(got) != 1 {
		t.Errorf("dropped-then-rolled-back table content: %v", got)
	}
}
