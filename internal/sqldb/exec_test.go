package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// testDB builds a small movie database used across executor tests.
func testDB(t testing.TB) *Database {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE movies (
		id INTEGER PRIMARY KEY,
		title TEXT NOT NULL,
		genre TEXT,
		revenue REAL,
		year INTEGER
	)`)
	db.MustExec(`CREATE TABLE reviews (
		id INTEGER PRIMARY KEY,
		movie_id INTEGER,
		stars INTEGER,
		body TEXT
	)`)
	db.MustExec(`INSERT INTO movies VALUES
		(1, 'Titanic', 'Romance', 2257.8, 1997),
		(2, 'Shang-Chi', 'Action', 432.2, 2021),
		(3, 'The Notebook', 'Romance', 115.6, 2004),
		(4, 'Heat', 'Crime', 187.4, 1995),
		(5, 'Quiet Nights', 'Romance', NULL, 2019)`)
	db.MustExec(`INSERT INTO reviews VALUES
		(1, 1, 5, 'still best'),
		(2, 1, 4, 'a guilty pleasure'),
		(3, 2, 3, 'solid film'),
		(4, 3, 5, 'weepy classic'),
		(5, 4, 5, 'tense and lean'),
		(6, 99, 1, 'orphan review')`)
	return db
}

// queryStrings runs a query and flattens the result to strings for easy
// comparison.
func queryStrings(t testing.TB, db *Database, sql string, params ...any) [][]string {
	t.Helper()
	res, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			if v.IsNull() {
				out[i][j] = "NULL"
			} else {
				out[i][j] = v.AsText()
			}
		}
	}
	return out
}

func TestSelectBasics(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT title FROM movies WHERE genre = 'Romance' ORDER BY revenue DESC")
	want := [][]string{{"Titanic"}, {"The Notebook"}, {"Quiet Nights"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSelectExpressions(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT title, revenue * 2 AS dbl FROM movies WHERE id = 1")
	if got[0][1] != "4515.6" {
		t.Errorf("arith projection = %v", got)
	}
	got = queryStrings(t, db, "SELECT 'a' || 'b' || 'c'")
	if got[0][0] != "abc" {
		t.Errorf("concat = %v", got)
	}
	got = queryStrings(t, db, "SELECT CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END")
	if got[0][0] != "yes" {
		t.Errorf("case = %v", got)
	}
}

func TestWhereThreeValuedLogic(t *testing.T) {
	db := testDB(t)
	// revenue NULL row must not match either side of the comparison.
	got := queryStrings(t, db, "SELECT COUNT(*) FROM movies WHERE revenue > 100 OR revenue <= 100")
	if got[0][0] != "4" {
		t.Errorf("3VL count = %v, want 4 (NULL revenue row excluded)", got)
	}
	got = queryStrings(t, db, "SELECT title FROM movies WHERE revenue IS NULL")
	if len(got) != 1 || got[0][0] != "Quiet Nights" {
		t.Errorf("IS NULL = %v", got)
	}
}

func TestOrderByVariants(t *testing.T) {
	db := testDB(t)
	// By output alias.
	got := queryStrings(t, db, "SELECT title, revenue AS r FROM movies WHERE revenue IS NOT NULL ORDER BY r LIMIT 1")
	if got[0][0] != "The Notebook" {
		t.Errorf("ORDER BY alias = %v", got)
	}
	// By ordinal.
	got = queryStrings(t, db, "SELECT title, year FROM movies ORDER BY 2 DESC LIMIT 1")
	if got[0][0] != "Shang-Chi" {
		t.Errorf("ORDER BY ordinal = %v", got)
	}
	// By non-projected column.
	got = queryStrings(t, db, "SELECT title FROM movies ORDER BY year LIMIT 1")
	if got[0][0] != "Heat" {
		t.Errorf("ORDER BY hidden col = %v", got)
	}
	// Multi-key with mixed direction.
	got = queryStrings(t, db, "SELECT genre, title FROM movies ORDER BY genre ASC, title DESC")
	if got[0][0] != "Action" || got[2][1] != "Titanic" {
		t.Errorf("multi-key order = %v", got)
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT id FROM movies ORDER BY id LIMIT 2 OFFSET 1")
	want := [][]string{{"2"}, {"3"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("limit/offset = %v", got)
	}
	// SQLite's LIMIT offset, count form.
	got = queryStrings(t, db, "SELECT id FROM movies ORDER BY id LIMIT 1, 2")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LIMIT m,n = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT DISTINCT genre FROM movies ORDER BY genre")
	want := [][]string{{"Action"}, {"Crime"}, {"Romance"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distinct = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT COUNT(*), COUNT(revenue), SUM(revenue), MIN(year), MAX(year) FROM movies")
	want := []string{"5", "4", "2993.0", "1995", "2021"}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("aggregates = %v, want %v", got[0], want)
	}
	got = queryStrings(t, db, "SELECT AVG(stars) FROM reviews")
	if !strings.HasPrefix(got[0][0], "3.8333") {
		t.Errorf("avg = %v", got)
	}
	// Aggregate over empty input yields one row.
	got = queryStrings(t, db, "SELECT COUNT(*), SUM(revenue) FROM movies WHERE id > 100")
	if got[0][0] != "0" || got[0][1] != "NULL" {
		t.Errorf("empty aggregate = %v", got)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, `SELECT genre, COUNT(*) AS n, MAX(revenue)
		FROM movies GROUP BY genre HAVING COUNT(*) >= 1 ORDER BY n DESC, genre`)
	if len(got) != 3 || got[0][0] != "Romance" || got[0][1] != "3" {
		t.Errorf("group by = %v", got)
	}
	// HAVING filters groups.
	got = queryStrings(t, db, "SELECT genre FROM movies GROUP BY genre HAVING COUNT(*) > 2")
	if len(got) != 1 || got[0][0] != "Romance" {
		t.Errorf("having = %v", got)
	}
	// Grouping expression reused in projection.
	got = queryStrings(t, db, "SELECT UPPER(genre), COUNT(*) FROM movies GROUP BY UPPER(genre) ORDER BY 1")
	if got[0][0] != "ACTION" {
		t.Errorf("group expr projection = %v", got)
	}
}

func TestGroupConcatAndDistinctAgg(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT GROUP_CONCAT(title, '; ') FROM movies WHERE genre = 'Romance' ORDER BY 1")
	if !strings.Contains(got[0][0], "Titanic") || !strings.Contains(got[0][0], "; ") {
		t.Errorf("group_concat = %v", got)
	}
	got = queryStrings(t, db, "SELECT COUNT(DISTINCT genre) FROM movies")
	if got[0][0] != "3" {
		t.Errorf("count distinct = %v", got)
	}
}

func TestJoins(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, `SELECT m.title, r.body FROM movies m
		JOIN reviews r ON m.id = r.movie_id WHERE m.genre = 'Romance' ORDER BY r.id`)
	if len(got) != 3 || got[0][1] != "still best" {
		t.Errorf("inner join = %v", got)
	}
	// LEFT JOIN keeps unmatched movies with NULL review.
	got = queryStrings(t, db, `SELECT m.title, r.body FROM movies m
		LEFT JOIN reviews r ON m.id = r.movie_id WHERE m.id = 5`)
	if len(got) != 1 || got[0][1] != "NULL" {
		t.Errorf("left join = %v", got)
	}
	// Join with aggregation.
	got = queryStrings(t, db, `SELECT m.title, COUNT(r.id) AS nrev FROM movies m
		LEFT JOIN reviews r ON m.id = r.movie_id GROUP BY m.title ORDER BY nrev DESC, m.title LIMIT 1`)
	if got[0][0] != "Titanic" || got[0][1] != "2" {
		t.Errorf("join+agg = %v", got)
	}
}

func TestJoinNonEqui(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, `SELECT COUNT(*) FROM movies a JOIN movies b ON a.revenue > b.revenue`)
	// Pairs with a.revenue > b.revenue among {2257.8, 432.2, 115.6, 187.4}: 6.
	if got[0][0] != "6" {
		t.Errorf("non-equi join count = %v", got)
	}
}

func TestCrossJoin(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT COUNT(*) FROM movies, reviews")
	if got[0][0] != "30" {
		t.Errorf("cross join = %v", got)
	}
}

func TestSubqueries(t *testing.T) {
	db := testDB(t)
	// Scalar subquery.
	got := queryStrings(t, db, "SELECT title FROM movies WHERE revenue = (SELECT MAX(revenue) FROM movies)")
	if len(got) != 1 || got[0][0] != "Titanic" {
		t.Errorf("scalar subquery = %v", got)
	}
	// IN subquery.
	got = queryStrings(t, db, "SELECT body FROM reviews WHERE movie_id IN (SELECT id FROM movies WHERE genre = 'Action')")
	if len(got) != 1 || got[0][0] != "solid film" {
		t.Errorf("IN subquery = %v", got)
	}
	// Correlated EXISTS.
	got = queryStrings(t, db, `SELECT title FROM movies m WHERE EXISTS (
		SELECT 1 FROM reviews r WHERE r.movie_id = m.id AND r.stars = 5) ORDER BY title`)
	want := [][]string{{"Heat"}, {"The Notebook"}, {"Titanic"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("correlated exists = %v", got)
	}
	// Derived table.
	got = queryStrings(t, db, `SELECT g, n FROM (SELECT genre AS g, COUNT(*) AS n FROM movies GROUP BY genre) sub WHERE n > 1`)
	if len(got) != 1 || got[0][0] != "Romance" {
		t.Errorf("derived table = %v", got)
	}
}

func TestLikeOperator(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT title FROM movies WHERE title LIKE '%ta%' ORDER BY title")
	if len(got) != 1 || got[0][0] != "Titanic" {
		t.Errorf("LIKE = %v", got)
	}
	got = queryStrings(t, db, "SELECT title FROM movies WHERE title LIKE '_eat'")
	if len(got) != 1 || got[0][0] != "Heat" {
		t.Errorf("LIKE underscore = %v", got)
	}
	got = queryStrings(t, db, "SELECT COUNT(*) FROM movies WHERE title NOT LIKE '%a%'")
	if got[0][0] != "2" { // The Notebook, Quiet Nights
		t.Errorf("NOT LIKE = %v", got)
	}
}

func TestInListAndBetween(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT COUNT(*) FROM movies WHERE year BETWEEN 1995 AND 2005")
	if got[0][0] != "3" {
		t.Errorf("BETWEEN = %v", got)
	}
	got = queryStrings(t, db, "SELECT COUNT(*) FROM movies WHERE genre IN ('Romance', 'Crime')")
	if got[0][0] != "4" {
		t.Errorf("IN list = %v", got)
	}
}

func TestParamsBinding(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT title FROM movies WHERE genre = ? AND year > ?", "Romance", 2000)
	want := [][]string{{"The Notebook"}, {"Quiet Nights"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("params = %v", got)
	}
	if _, err := db.Query("SELECT * FROM movies WHERE id = ?"); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestInsertSelect(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE TABLE romance (id INTEGER, title TEXT)")
	n, err := db.Exec("INSERT INTO romance SELECT id, title FROM movies WHERE genre = 'Romance'")
	if err != nil || n != 3 {
		t.Fatalf("insert..select n=%d err=%v", n, err)
	}
	got := queryStrings(t, db, "SELECT COUNT(*) FROM romance")
	if got[0][0] != "3" {
		t.Errorf("romance count = %v", got)
	}
}

func TestInsertColumnSubset(t *testing.T) {
	db := testDB(t)
	db.MustExec("INSERT INTO movies (id, title) VALUES (10, 'Sparse')")
	got := queryStrings(t, db, "SELECT genre, revenue FROM movies WHERE id = 10")
	if got[0][0] != "NULL" || got[0][1] != "NULL" {
		t.Errorf("unlisted columns should be NULL: %v", got)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec("UPDATE movies SET revenue = 100.0 WHERE revenue IS NULL")
	if err != nil || n != 1 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	got := queryStrings(t, db, "SELECT revenue FROM movies WHERE id = 5")
	if got[0][0] != "100.0" {
		t.Errorf("update result = %v", got)
	}
	n, err = db.Exec("DELETE FROM movies WHERE genre = 'Romance'")
	if err != nil || n != 3 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	got = queryStrings(t, db, "SELECT COUNT(*) FROM movies")
	if got[0][0] != "2" {
		t.Errorf("after delete = %v", got)
	}
	// Index must be consistent after delete: id lookup still works.
	got = queryStrings(t, db, "SELECT title FROM movies WHERE id = 2")
	if len(got) != 1 || got[0][0] != "Shang-Chi" {
		t.Errorf("index after delete = %v", got)
	}
}

func TestConstraints(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("INSERT INTO movies VALUES (1, 'Dup', 'X', 0, 2000)"); err == nil {
		t.Error("duplicate primary key should fail")
	}
	if _, err := db.Exec("INSERT INTO movies VALUES (20, NULL, 'X', 0, 2000)"); err == nil {
		t.Error("NOT NULL violation should fail")
	}
}

func TestTypeAffinity(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (i INTEGER, r REAL, s TEXT)")
	db.MustExec("INSERT INTO t VALUES ('42', '3.5', 7)")
	res, err := db.Query("SELECT i, r, s FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Kind() != KindInt {
		t.Errorf("i kind = %v, want INTEGER", res.Rows[0][0].Kind())
	}
	if res.Rows[0][1].Kind() != KindFloat {
		t.Errorf("r kind = %v, want REAL", res.Rows[0][1].Kind())
	}
}

func TestIntegerDivision(t *testing.T) {
	db := NewDatabase()
	got := queryStrings(t, db, "SELECT 7 / 2, 7.0 / 2, 7 % 3, 1 / 0")
	want := []string{"3", "3.5", "1", "NULL"}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("division = %v, want %v", got[0], want)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	db := NewDatabase()
	got := queryStrings(t, db, `SELECT UPPER('ab'), LOWER('AB'), LENGTH('abcd'),
		SUBSTR('hello', 2, 3), TRIM('  x  '), REPLACE('aaa', 'a', 'b'),
		ABS(-4), ROUND(3.567, 2), COALESCE(NULL, NULL, 5), IFNULL(NULL, 'd'),
		NULLIF(1, 1), INSTR('hello', 'll')`)
	want := []string{"AB", "ab", "4", "ell", "x", "bbb", "4", "3.57", "5", "d", "NULL", "3"}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("builtins = %v, want %v", got[0], want)
	}
}

func TestStrftime(t *testing.T) {
	db := NewDatabase()
	got := queryStrings(t, db, "SELECT STRFTIME('%Y', '2017-10-01'), STRFTIME('%m-%d', '2017-10-01 14:00:00')")
	if got[0][0] != "2017" || got[0][1] != "10-01" {
		t.Errorf("strftime = %v", got)
	}
}

func TestCustomUDF(t *testing.T) {
	db := testDB(t)
	db.Funcs().Register("SHOUT", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, fmt.Errorf("SHOUT wants 1 arg")
		}
		return Text(strings.ToUpper(args[0].AsText()) + "!"), nil
	})
	got := queryStrings(t, db, "SELECT SHOUT(title) FROM movies WHERE id = 1")
	if got[0][0] != "TITANIC!" {
		t.Errorf("udf = %v", got)
	}
	// UDFs usable in WHERE (the LM-UDF-in-SQL design point).
	got = queryStrings(t, db, "SELECT COUNT(*) FROM movies WHERE SHOUT(genre) = 'ROMANCE!'")
	if got[0][0] != "3" {
		t.Errorf("udf in where = %v", got)
	}
}

func TestSchemaSQL(t *testing.T) {
	db := testDB(t)
	s := db.SchemaSQL()
	if !strings.Contains(s, "CREATE TABLE movies") || !strings.Contains(s, "revenue REAL") {
		t.Errorf("schema SQL missing pieces:\n%s", s)
	}
}

func TestQueryErrors(t *testing.T) {
	db := testDB(t)
	for _, q := range []string{
		"SELECT nosuch FROM movies",
		"SELECT * FROM nosuch",
		"SELECT NOSUCHFN(1)",
		"SELECT id FROM movies WHERE SUM(id) > 1", // aggregate in WHERE
		"INSERT INTO movies VALUES (1)",
	} {
		if _, err := db.Query(q); err == nil {
			if _, err2 := db.Exec(q); err2 == nil {
				t.Errorf("%q: expected error", q)
			}
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(t)
	_, err := db.Query("SELECT id FROM movies m JOIN reviews r ON m.id = r.movie_id")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column should error, got %v", err)
	}
}

// TestIndexScanEquivalence is the core planner property: for random
// equality predicates, an indexed scan returns exactly what a full scan
// returns.
func TestIndexScanEquivalence(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (k INTEGER, v TEXT)")
	r := rand.New(rand.NewSource(5))
	var rows [][]any
	for i := 0; i < 500; i++ {
		rows = append(rows, []any{r.Intn(50), fmt.Sprintf("v%d", i)})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	// Query before index exists.
	for k := 0; k < 50; k++ {
		pre := queryStrings(t, db, "SELECT v FROM t WHERE k = ? ORDER BY v", k)
		db.MustExec("CREATE INDEX idx_k ON t (k)")
		post := queryStrings(t, db, "SELECT v FROM t WHERE k = ? ORDER BY v", k)
		if !reflect.DeepEqual(pre, post) {
			t.Fatalf("index scan differs from full scan for k=%d:\npre:  %v\npost: %v", k, pre, post)
		}
	}
}

// TestHashJoinEquivalence checks the hash join against the nested-loop
// result by comparing an equi-join with its cross-join + filter rewrite.
func TestHashJoinEquivalence(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE a (x INTEGER, p TEXT)")
	db.MustExec("CREATE TABLE b (y INTEGER, q TEXT)")
	r := rand.New(rand.NewSource(11))
	var arows, brows [][]any
	for i := 0; i < 200; i++ {
		arows = append(arows, []any{r.Intn(30), fmt.Sprintf("a%d", i)})
		brows = append(brows, []any{r.Intn(30), fmt.Sprintf("b%d", i)})
	}
	if err := db.InsertRows("a", arows); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("b", brows); err != nil {
		t.Fatal(err)
	}
	hj := queryStrings(t, db, "SELECT p, q FROM a JOIN b ON a.x = b.y ORDER BY p, q")
	nl := queryStrings(t, db, "SELECT p, q FROM a CROSS JOIN b WHERE a.x = b.y ORDER BY p, q")
	if !reflect.DeepEqual(hj, nl) {
		t.Fatalf("hash join (%d rows) != cross+filter (%d rows)", len(hj), len(nl))
	}
}

func TestResultHelpers(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT id, title FROM movies ORDER BY id LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.ColumnIndex("TITLE") != 1 || res.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex")
	}
	if res.Value(0, "title").AsText() != "Titanic" {
		t.Error("Value accessor")
	}
	if !res.Value(99, "title").IsNull() {
		t.Error("out-of-range Value should be NULL")
	}
	s := res.String()
	if !strings.Contains(s, "Titanic") || !strings.Contains(s, "id") {
		t.Errorf("table rendering:\n%s", s)
	}
}

func TestConcurrentReads(t *testing.T) {
	db := testDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := db.Query("SELECT COUNT(*) FROM movies JOIN reviews ON movies.id = reviews.movie_id"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelectNoFrom(t *testing.T) {
	db := NewDatabase()
	got := queryStrings(t, db, "SELECT 1 + 1, 'x'")
	if got[0][0] != "2" || got[0][1] != "x" {
		t.Errorf("SELECT without FROM = %v", got)
	}
}

func TestCastExpr(t *testing.T) {
	db := NewDatabase()
	got := queryStrings(t, db, "SELECT CAST('12' AS INTEGER), CAST(3.9 AS INTEGER), CAST(5 AS TEXT)")
	want := []string{"12", "3", "5"}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("cast = %v", got)
	}
}
