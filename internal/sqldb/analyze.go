package sqldb

import (
	"context"
	"time"
)

// This file implements EXPLAIN ANALYZE: per-operator execution accounting
// over the real operator tree. An ordinary execution pays for nothing here
// — queryCtx.rec stays nil and operators run untouched. Under
// ExplainAnalyze a recorder is attached before planning, every operator of
// the resulting tree (and of every compiled subplan) is wrapped in a
// statOp that counts rows, loops and wall time as the statement actually
// runs, and the rendered plan (explain.go) annotates each line with the
// numbers its operator really produced. The per-operator counts are
// reconciled with the per-query QueryStats and the engine-wide Stats by a
// property test: every scanned row is attributable to exactly one
// operator in the recorded trees.

// opStat is one operator's execution record.
type opStat struct {
	rows    uint64 // rows the operator produced (cumulative across loops)
	loops   uint64 // times the operator was (re)started: resets + 1
	elapsed time.Duration
}

// subplanRec records one compiled subquery's executed plan: its latest
// instrumented root, its probe/cache counters, and — for non-cacheable
// subplans rebuilt per probe — the scan totals of roots already discarded,
// so no scanned row ever goes unattributed.
type subplanRec struct {
	root   operator // latest instrumented root; nil until first probe (non-cacheable)
	probes uint64
	hits   uint64
	misses uint64
	// carriedScanned accumulates treeScanned of replaced roots.
	carriedScanned uint64
}

// execRecorder collects per-operator statistics for one analyzed
// execution. It is single-goroutine, like the execution itself.
type execRecorder struct {
	stats    map[operator]*opStat
	subplans map[*SelectStmt]*subplanRec
}

func newExecRecorder() *execRecorder {
	return &execRecorder{
		stats:    make(map[operator]*opStat),
		subplans: make(map[*SelectStmt]*subplanRec),
	}
}

// subplanFor returns the record for a compiled subquery, creating it on
// first sight. Re-compilation of the same statement (a cacheable subplan
// inside a rebuilt non-cacheable one) reuses the record so its counters
// accumulate across rebuilds.
func (rec *execRecorder) subplanFor(sel *SelectStmt) *subplanRec {
	if sp, ok := rec.subplans[sel]; ok {
		return sp
	}
	sp := &subplanRec{}
	rec.subplans[sel] = sp
	return sp
}

// replaceRoot installs a freshly built (already instrumented) root,
// folding the replaced root's scan totals into the carry and dropping its
// per-operator records so a non-cacheable subplan rebuilt once per outer
// row does not pin every discarded tree (and its materialised rows) in
// the recorder for the whole execution.
func (sp *subplanRec) replaceRoot(rec *execRecorder, root operator) {
	if sp.root != nil {
		sp.carriedScanned += treeScanned(sp.root)
		rec.forget(sp.root)
	}
	sp.root = root
}

// forget removes a discarded tree's per-operator records, leaving the
// tree unreferenced. Nested subplans are separate trees with their own
// records and are not touched.
func (rec *execRecorder) forget(op operator) {
	if op == nil {
		return
	}
	switch t := op.(type) {
	case *statOp:
		delete(rec.stats, t.child)
		rec.forget(t.child)
	case *filterOp:
		rec.forget(t.child)
	case *projectOp:
		rec.forget(t.child)
	case *groupOp:
		rec.forget(t.child)
	case *distinctOp:
		rec.forget(t.child)
	case *sortOp:
		rec.forget(t.child)
	case *limitOp:
		rec.forget(t.child)
	case *hashJoinOp:
		rec.forget(t.probe)
	case *indexJoinOp:
		rec.forget(t.probe)
	case *nestedLoopJoinOp:
		rec.forget(t.left)
	}
}

// statFor returns (creating) the record attached to op.
func (rec *execRecorder) statFor(op operator) *opStat {
	if st, ok := rec.stats[op]; ok {
		return st
	}
	st := &opStat{loops: 1}
	rec.stats[op] = st
	return st
}

// statOp wraps an operator, timing its next calls and counting the rows
// it produces. Reported time is inclusive of the subtree below, like
// EXPLAIN ANALYZE in mainstream engines.
type statOp struct {
	child operator
	stat  *opStat
}

func (s *statOp) columns() []colInfo { return s.child.columns() }

func (s *statOp) reset() {
	s.stat.loops++
	s.child.reset()
}

func (s *statOp) next() (Row, bool, error) {
	start := time.Now()
	r, ok, err := s.child.next()
	s.stat.elapsed += time.Since(start)
	if ok {
		s.stat.rows++
	}
	return r, ok, err
}

// instrument wraps every live operator of a planned tree in a statOp.
// Materialised subtrees retained only for display (join build sides,
// derived-table sources) already ran during planning and are left bare —
// their scans carry their own scanned counters. Called after planning
// completes, so no planner type-assertion ever sees a wrapper.
func instrument(op operator, rec *execRecorder) operator {
	if op == nil {
		return nil
	}
	switch t := op.(type) {
	case *limitOp:
		t.child = instrument(t.child, rec)
	case *sortOp:
		t.child = instrument(t.child, rec)
	case *distinctOp:
		t.child = instrument(t.child, rec)
	case *projectOp:
		t.child = instrument(t.child, rec)
	case *groupOp:
		t.child = instrument(t.child, rec)
	case *filterOp:
		t.child = instrument(t.child, rec)
	case *hashJoinOp:
		t.probe = instrument(t.probe, rec)
	case *indexJoinOp:
		t.probe = instrument(t.probe, rec)
	case *nestedLoopJoinOp:
		t.left = instrument(t.left, rec)
	case *scanOp, *ordScanOp, *corrProbeScanOp, *mergeJoinOp, *valuesOp, *parScanOp, *vecScanOp:
		// Leaves (valuesOp.src is a dead display-only subtree).
	}
	w := &statOp{child: op, stat: rec.statFor(op)}
	return w
}

// treeScanned sums the base-table rows an operator tree read, including
// materialised build/derived subtrees that executed during planning. It
// does not descend into compiled subplans — those are separate trees
// accounted per subplanRec.
func treeScanned(op operator) uint64 {
	switch t := op.(type) {
	case *statOp:
		return treeScanned(t.child)
	case *scanOp:
		return t.scanned
	case *ordScanOp:
		return t.scanned
	case *parScanOp:
		return t.scanned
	case *vecScanOp:
		return t.scanned
	case *corrProbeScanOp:
		return t.scanned
	case *mergeJoinOp:
		return t.scanned
	case *valuesOp:
		if t.src != nil {
			return treeScanned(t.src)
		}
		return 0
	case *filterOp:
		return treeScanned(t.child)
	case *projectOp:
		return treeScanned(t.child)
	case *groupOp:
		return treeScanned(t.child)
	case *distinctOp:
		return treeScanned(t.child)
	case *sortOp:
		return treeScanned(t.child)
	case *limitOp:
		return treeScanned(t.child)
	case *hashJoinOp:
		n := treeScanned(t.probe)
		if t.buildSrc != nil {
			n += treeScanned(t.buildSrc)
		}
		return n
	case *indexJoinOp:
		return treeScanned(t.probe)
	case *nestedLoopJoinOp:
		n := treeScanned(t.left)
		if t.rightSrc != nil {
			n += treeScanned(t.rightSrc)
		}
		return n
	}
	return 0
}

// AnalyzedQuery is the result of ExplainAnalyze: the operator tree the
// statement actually ran, rendered one line per operator and annotated
// with real counts, plus the execution's per-query totals.
type AnalyzedQuery struct {
	// Plan is the annotated plan, one line per operator (indented).
	Plan []string
	// Stats is the per-query recorder's totals for this execution — the
	// exact amount the statement contributed to Database.Stats().
	Stats QueryStats

	root operator
	rec  *execRecorder
}

// scannedTotal sums per-operator scanned counts over the executed trees:
// the main tree (including materialised build/derived subtrees) plus
// every compiled subplan, current and discarded. The analyze property
// test asserts this equals Stats.RowsScanned.
func (a *AnalyzedQuery) scannedTotal() uint64 {
	n := treeScanned(a.root)
	for _, sp := range a.rec.subplans {
		n += sp.carriedScanned
		if sp.root != nil {
			n += treeScanned(sp.root)
		}
	}
	return n
}

// rootRows reports how many rows the plan root emitted.
func (a *AnalyzedQuery) rootRows() uint64 {
	if s, ok := a.root.(*statOp); ok {
		return s.stat.rows
	}
	return 0
}

// ExplainAnalyze executes a SELECT to completion and returns its operator
// tree annotated with what each operator really did: rows produced, loops
// (for operators re-pulled per outer row), inclusive wall time, rows
// scanned per access path, sort input-vs-kept counts, and per-subplan
// probe and cache-hit counts. Result rows are consumed and discarded, as
// in mainstream EXPLAIN ANALYZE; the per-query totals land in the
// returned Stats and are folded into Database.Stats() exactly as a normal
// execution's would be. Instrumentation is attached per call, so ordinary
// queries pay nothing for it.
func (db *Database) ExplainAnalyze(ctx context.Context, sql string, params ...any) (*AnalyzedQuery, error) {
	sel, err := db.plans.lookup(sql, "ExplainAnalyze")
	if err != nil {
		return nil, err
	}
	return db.explainAnalyze(ctx, sel, bindParams(params))
}

func (db *Database) explainAnalyze(ctx context.Context, sel *SelectStmt, vals []Value) (*AnalyzedQuery, error) {
	qc := newQueryCtx(ctx, db)
	qc.rec = newExecRecorder()
	qc.queries = 1
	defer qc.flush()
	if err := qc.cancelled(); err != nil {
		return nil, err
	}
	snap, release := db.beginRead(nil)
	qc.snap = snap
	qc.releaseSnap = release // the deferred flush releases the snapshot
	defer qc.stopWorkers()   // parallel-scan pools stop before the snapshot goes
	root, _, err := buildSelectPlan(sel, db, vals, nil, true, qc)
	if err != nil {
		return nil, err
	}
	root = instrument(root, qc.rec)
	for {
		_, ok, err := root.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		qc.rowsEmitted++
	}
	p := &planPrinter{rec: qc.rec}
	p.describe(root, 0)
	return &AnalyzedQuery{Plan: p.lines, Stats: qc.snapshot(), root: root, rec: qc.rec}, nil
}
