package sqldb

import (
	"math/rand"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`SELECT a.b, 'it''s', 3.5, x FROM t -- comment
WHERE x >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenType
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.typ)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.5", ",", "x", "FROM", "t", "WHERE", "x", ">=", "10", ""}
	if len(texts) != len(want) {
		t.Fatalf("token texts = %q, want %q", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != tokKeyword || kinds[5] != tokString || kinds[7] != tokNumber {
		t.Errorf("unexpected token kinds: %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "SELECT @", "/* unclosed"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q): expected error", src)
		}
	}
}

func TestLexQuotedIdentifiers(t *testing.T) {
	toks, err := lex(`SELECT "weird col", [bracketed], ` + "`tick`" + ` FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].typ != tokIdent || toks[1].text != "weird col" {
		t.Errorf("double-quoted ident: %+v", toks[1])
	}
	if toks[3].typ != tokIdent || toks[3].text != "bracketed" {
		t.Errorf("bracket ident: %+v", toks[3])
	}
	if toks[5].typ != tokIdent || toks[5].text != "tick" {
		t.Errorf("backtick ident: %+v", toks[5])
	}
}

func TestParseSelectShapes(t *testing.T) {
	// Each input must parse; print; and re-parse to the same string.
	inputs := []string{
		"SELECT 1",
		"SELECT * FROM t",
		"SELECT t.* FROM t",
		"SELECT a, b AS c FROM t WHERE a = 1",
		"SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 5 OFFSET 2",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT a FROM t WHERE name LIKE '%x%'",
		"SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL",
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(DISTINCT a), SUM(b) FROM t GROUP BY c HAVING COUNT(*) > 2",
		"SELECT a FROM t JOIN u ON t.id = u.id LEFT JOIN v ON v.k = u.k",
		"SELECT a FROM (SELECT a FROM t) AS sub",
		"SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t",
		"SELECT CASE a WHEN 1 THEN 'one' END FROM t",
		"SELECT CAST(a AS INTEGER) FROM t",
		"SELECT a || b FROM t",
		"SELECT -a, +b FROM t",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
		"SELECT a FROM t WHERE (SELECT MAX(b) FROM u) > 10",
		"SELECT a FROM t CROSS JOIN u",
		"SELECT 2 + 3 * 4",
		"SELECT a FROM t WHERE NOT a = 1 OR b = 2 AND c = 3",
		"SELECT UPPER(name), LENGTH(name) FROM t",
	}
	for _, src := range inputs {
		s1 := mustParse(t, src)
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-parse of %q (printed %q) failed: %v", src, printed, err)
			continue
		}
		if s2.String() != printed {
			t.Errorf("print not stable for %q:\n first: %s\nsecond: %s", src, printed, s2.String())
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT 1 WHERE a OR b AND c")
	sel := s.(*SelectStmt)
	or, ok := sel.Where.(*BinaryOp)
	if !ok || or.Op != "OR" {
		t.Fatalf("top-level op = %v, want OR", sel.Where)
	}
	and, ok := or.Right.(*BinaryOp)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %v, want AND", or.Right)
	}

	s = mustParse(t, "SELECT 2 + 3 * 4")
	item := s.(*SelectStmt).Items[0].Expr.(*BinaryOp)
	if item.Op != "+" {
		t.Fatalf("top op = %q, want +", item.Op)
	}
	if mul, ok := item.Right.(*BinaryOp); !ok || mul.Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
}

func TestParseNotVariants(t *testing.T) {
	sel := mustParse(t, "SELECT 1 WHERE a NOT LIKE 'x%'").(*SelectStmt)
	u, ok := sel.Where.(*UnaryOp)
	if !ok || u.Op != "NOT" {
		t.Fatalf("NOT LIKE should desugar to NOT(LIKE): %v", sel.Where)
	}
	sel = mustParse(t, "SELECT 1 WHERE a NOT BETWEEN 1 AND 2").(*SelectStmt)
	if bt, ok := sel.Where.(*Between); !ok || !bt.Not {
		t.Fatalf("NOT BETWEEN: %v", sel.Where)
	}
	sel = mustParse(t, "SELECT 1 WHERE a NOT IN (1)").(*SelectStmt)
	if in, ok := sel.Where.(*InList); !ok || !in.Not {
		t.Fatalf("NOT IN: %v", sel.Where)
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE IF NOT EXISTS schools (
		CDSCode TEXT NOT NULL PRIMARY KEY,
		City TEXT NULL,
		Longitude REAL,
		Enrollment INTEGER,
		PRIMARY KEY (CDSCode)
	)`)
	ct := s.(*CreateTableStmt)
	if !ct.IfNotExists || ct.Name != "schools" || len(ct.Columns) != 4 {
		t.Fatalf("CREATE TABLE parse: %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[0].NotNull {
		t.Error("column constraints lost")
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	ins2 := mustParse(t, "INSERT INTO t SELECT a, b FROM u").(*InsertStmt)
	if ins2.Select == nil {
		t.Fatal("INSERT..SELECT lost the select")
	}
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'z' WHERE id = 3").(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update: %+v", up)
	}
	del := mustParse(t, "DELETE FROM t WHERE a < 0").(*DeleteStmt)
	if del.Where == nil {
		t.Fatalf("delete: %+v", del)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"FOO BAR",
		"SELECT a FROM t JOIN u", // missing ON
		"CREATE TABLE t ()",
		"INSERT INTO t VALUES",
		"SELECT (SELECT a FROM t", // unbalanced
		"SELECT CASE END",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE\n  ,")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should locate line 2: %v", err)
	}
}

func TestParseParams(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE b = ? AND c = ?").(*SelectStmt)
	var idxs []int
	walkExpr(sel.Where, func(e Expr) bool {
		if p, ok := e.(*Param); ok {
			idxs = append(idxs, p.Index)
		}
		return true
	})
	if len(idxs) != 2 || idxs[0] != 0 || idxs[1] != 1 {
		t.Errorf("param indexes = %v", idxs)
	}
}

func TestParseMultiStatement(t *testing.T) {
	stmts, err := ParseAll("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

// TestParsePrintFixpoint is a property test: for randomly generated
// expression trees, print → parse → print is a fixpoint.
func TestParsePrintFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		e := randomExpr(r, 3)
		src := "SELECT " + e.String()
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("generated SQL does not parse: %q: %v", src, err)
		}
		printed := s.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed SQL does not parse: %q: %v", printed, err)
		}
		if s2.String() != printed {
			t.Fatalf("not a fixpoint:\n%s\n%s", printed, s2.String())
		}
	}
}

func randomExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return &Literal{Val: Int(int64(r.Intn(100)))}
		case 1:
			return &Literal{Val: Text("s")}
		case 2:
			return &ColumnRef{Column: "c", index: -1}
		default:
			return &Literal{Val: Null}
		}
	}
	switch r.Intn(7) {
	case 0:
		ops := []string{"+", "-", "*", "/", "=", "<", "AND", "OR", "||", "LIKE"}
		return &BinaryOp{Op: ops[r.Intn(len(ops))], Left: randomExpr(r, depth-1), Right: randomExpr(r, depth-1)}
	case 1:
		return &UnaryOp{Op: "NOT", Expr: randomExpr(r, depth-1)}
	case 2:
		return &IsNull{Expr: randomExpr(r, depth-1), Not: r.Intn(2) == 0}
	case 3:
		return &FuncCall{Name: "COALESCE", Args: []Expr{randomExpr(r, depth-1), randomExpr(r, depth-1)}}
	case 4:
		return &CaseExpr{Whens: []CaseWhen{{When: randomExpr(r, depth-1), Then: randomExpr(r, depth-1)}}, Else: randomExpr(r, depth-1)}
	case 5:
		return &Between{Expr: randomExpr(r, depth-1), Lo: randomExpr(r, depth-1), Hi: randomExpr(r, depth-1)}
	default:
		return &InList{Expr: randomExpr(r, depth-1), List: []Expr{randomExpr(r, depth-1)}}
	}
}
