// Package embed provides the deterministic text-embedding model that
// stands in for the E5-base encoder in the TAG paper's RAG baseline.
//
// The embedder hashes unigram and bigram features into a fixed-dimension
// vector with sublinear term weighting and L2 normalisation. Like a real
// sentence encoder, it maps lexically/thematically similar strings to
// nearby vectors; unlike one, it is exactly reproducible and dependency-
// free. The RAG baseline only needs "retrieves rows sharing salient terms
// with the query", which this preserves.
package embed

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// DefaultDim is the embedding dimensionality (E5-base uses 768; 256 keeps
// the flat index fast at benchmark scale with the same behaviour).
const DefaultDim = 256

// Embedder converts text to fixed-dimension unit vectors.
type Embedder struct {
	dim int
}

// New returns an embedder with the given dimension (<=0 selects
// DefaultDim).
func New(dim int) *Embedder {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Embedder{dim: dim}
}

// Dim reports the embedding dimension.
func (e *Embedder) Dim() int { return e.dim }

// stopwords are excluded from features; they carry no retrieval signal.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "in": true, "on": true,
	"is": true, "are": true, "and": true, "or": true, "to": true, "it": true,
	"that": true, "this": true, "with": true, "for": true, "at": true,
	"be": true, "by": true, "as": true, "was": true, "were": true,
}

// tokenize lower-cases and splits text into alphanumeric word tokens.
func tokenize(s string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			w := b.String()
			if !stopwords[w] {
				toks = append(toks, w)
			}
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// feature hashes a feature string to (index, sign).
func (e *Embedder) feature(f string) (int, float32) {
	h := fnv.New64a()
	h.Write([]byte(f))
	v := h.Sum64()
	idx := int(v % uint64(e.dim))
	sign := float32(1)
	if (v>>63)&1 == 1 {
		sign = -1
	}
	return idx, sign
}

// Embed returns the L2-normalised embedding of the text. Empty or
// stopword-only text embeds to the zero vector.
func (e *Embedder) Embed(text string) []float32 {
	vec := make([]float32, e.dim)
	toks := tokenize(text)
	counts := make(map[string]int, len(toks)*2)
	for i, t := range toks {
		counts[t]++
		if i+1 < len(toks) {
			counts[t+"_"+toks[i+1]]++
		}
	}
	for f, c := range counts {
		idx, sign := e.feature(f)
		// Sublinear TF; bigrams get extra weight (they are more specific).
		w := float32(1 + math.Log(float64(c)))
		if strings.Contains(f, "_") {
			w *= 1.5
		}
		vec[idx] += sign * w
	}
	normalize(vec)
	return vec
}

// EmbedBatch embeds many texts.
func (e *Embedder) EmbedBatch(texts []string) [][]float32 {
	out := make([][]float32, len(texts))
	for i, t := range texts {
		out[i] = e.Embed(t)
	}
	return out
}

// normalize scales a vector to unit L2 norm in place (zero vectors are
// left as-is).
func normalize(v []float32) {
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range v {
		v[i] *= inv
	}
}

// Cosine computes cosine similarity between two vectors of equal length.
// For unit vectors this equals the dot product.
func Cosine(a, b []float32) float32 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float32(dot / math.Sqrt(na*nb))
}
