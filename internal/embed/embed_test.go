package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	e := New(0)
	a := e.Embed("comments on gradient boosting")
	b := e.Embed("comments on gradient boosting")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding must be deterministic")
		}
	}
	if e.Dim() != DefaultDim || len(a) != DefaultDim {
		t.Errorf("dim = %d", len(a))
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	e := New(128)
	if err := quick.Check(func(s string) bool {
		v := e.Embed(s)
		var sum float64
		for _, x := range v {
			sum += float64(x) * float64(x)
		}
		// Zero vector (no tokens) or unit norm.
		return sum == 0 || math.Abs(sum-1) < 1e-4
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEmbedSimilarityOrdering(t *testing.T) {
	e := New(0)
	q := e.Embed("schools with high math scores in Palo Alto")
	close1 := e.Embed("School: Gunn High, City: Palo Alto, AvgScrMath: 620")
	far := e.Embed("TransactionID: 9, GasStationID: 44, Amount: 30, Price: 21.5")
	if Cosine(q, close1) <= Cosine(q, far) {
		t.Errorf("related row should be closer: close=%v far=%v", Cosine(q, close1), Cosine(q, far))
	}
}

func TestEmbedStopwordsIgnored(t *testing.T) {
	e := New(0)
	a := e.Embed("the school of the city")
	b := e.Embed("school city")
	if Cosine(a, b) < 0.99 {
		t.Errorf("stopwords should not change the embedding much: %v", Cosine(a, b))
	}
}

func TestEmbedEmpty(t *testing.T) {
	e := New(0)
	v := e.Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text must embed to zero vector")
		}
	}
	if Cosine(v, v) != 0 {
		t.Error("cosine of zero vectors is 0 by convention")
	}
}

func TestEmbedBatch(t *testing.T) {
	e := New(64)
	vs := e.EmbedBatch([]string{"a b", "c d"})
	if len(vs) != 2 || len(vs[0]) != 64 {
		t.Fatalf("batch shape wrong")
	}
}

func TestCosineBounds(t *testing.T) {
	e := New(0)
	if err := quick.Check(func(s1, s2 string) bool {
		c := Cosine(e.Embed(s1), e.Embed(s2))
		return c >= -1.0001 && c <= 1.0001
	}, nil); err != nil {
		t.Error(err)
	}
	v := e.Embed("identical text here")
	if Cosine(v, v) < 0.999 {
		t.Error("self-similarity should be 1")
	}
}
