// Package vector implements the vector store that stands in for FAISS in
// the TAG paper's RAG baseline: an exact flat index and an IVF-style
// partitioned approximate index, both over float32 vectors with cosine,
// dot-product or Euclidean metrics.
package vector

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Metric selects the similarity function.
type Metric uint8

// Metrics. Higher is better for Cosine and Dot; lower is better for L2
// (scores are negated internally so "higher wins" uniformly).
const (
	Cosine Metric = iota
	Dot
	L2
)

// ErrDimension is returned when a vector's length does not match the
// index dimension.
var ErrDimension = errors.New("vector: dimension mismatch")

// Hit is one search result: the stored id and its similarity score
// (higher is more similar, for every metric).
type Hit struct {
	ID    int
	Score float32
}

// Index is the common interface of the flat and IVF indexes.
type Index interface {
	// Add stores a vector under id. Ids need not be dense or ordered.
	Add(id int, vec []float32) error
	// Search returns the k nearest stored vectors, best first.
	Search(query []float32, k int) ([]Hit, error)
	// Len reports the number of stored vectors.
	Len() int
}

// score computes the (higher-is-better) similarity under a metric.
func score(m Metric, a, b []float32) float32 {
	switch m {
	case L2:
		var d float64
		for i := range a {
			diff := float64(a[i]) - float64(b[i])
			d += diff * diff
		}
		return float32(-d)
	default: // Cosine over unit vectors == Dot; compute dot with fallback norm.
		var dot float64
		for i := range a {
			dot += float64(a[i]) * float64(b[i])
		}
		if m == Dot {
			return float32(dot)
		}
		var na, nb float64
		for i := range a {
			na += float64(a[i]) * float64(a[i])
			nb += float64(b[i]) * float64(b[i])
		}
		if na == 0 || nb == 0 {
			return 0
		}
		return float32(dot / math.Sqrt(na*nb))
	}
}

// ---------------------------------------------------------------------------
// Flat (exact) index

// Flat is an exact brute-force index — the behavioural equivalent of
// faiss.IndexFlat, which is what the paper's RAG baseline uses.
type Flat struct {
	dim    int
	metric Metric
	ids    []int
	vecs   [][]float32
}

// NewFlat creates an exact index of the given dimension.
func NewFlat(dim int, metric Metric) *Flat {
	return &Flat{dim: dim, metric: metric}
}

// Add implements Index.
func (f *Flat) Add(id int, vec []float32) error {
	if len(vec) != f.dim {
		return fmt.Errorf("%w: got %d, index dim %d", ErrDimension, len(vec), f.dim)
	}
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, vec)
	return nil
}

// Len implements Index.
func (f *Flat) Len() int { return len(f.ids) }

// hitHeap is a min-heap on score (so the worst of the current top-k is on
// top and can be evicted cheaply).
type hitHeap []Hit

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Search implements Index.
func (f *Flat) Search(query []float32, k int) ([]Hit, error) {
	if len(query) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index dim %d", ErrDimension, len(query), f.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	h := make(hitHeap, 0, k)
	for i, v := range f.vecs {
		s := score(f.metric, query, v)
		if len(h) < k {
			heap.Push(&h, Hit{ID: f.ids[i], Score: s})
		} else if s > h[0].Score {
			h[0] = Hit{ID: f.ids[i], Score: s}
			heap.Fix(&h, 0)
		}
	}
	out := make([]Hit, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// ---------------------------------------------------------------------------
// IVF (inverted file) index

// IVF partitions vectors into nlist clusters by k-means and searches only
// the nprobe closest clusters — the classic FAISS IVF design. It trades
// recall for speed; the benchmark uses Flat, IVF backs the ablation bench.
type IVF struct {
	dim     int
	metric  Metric
	nlist   int
	nprobe  int
	trained bool
	cents   [][]float32
	lists   [][]int // cluster -> positions in ids/vecs
	ids     []int
	vecs    [][]float32
}

// NewIVF creates an IVF index with nlist partitions, probing nprobe of
// them per query.
func NewIVF(dim int, metric Metric, nlist, nprobe int) *IVF {
	if nlist < 1 {
		nlist = 1
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	return &IVF{dim: dim, metric: metric, nlist: nlist, nprobe: nprobe}
}

// Train runs a few rounds of k-means over the sample to position the
// cluster centroids. Must be called before Add.
func (ivf *IVF) Train(sample [][]float32) error {
	for _, v := range sample {
		if len(v) != ivf.dim {
			return ErrDimension
		}
	}
	if len(sample) == 0 {
		return errors.New("vector: IVF training needs a non-empty sample")
	}
	n := ivf.nlist
	if n > len(sample) {
		n = len(sample)
	}
	// Deterministic init: evenly strided picks.
	cents := make([][]float32, n)
	stride := len(sample) / n
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i++ {
		src := sample[(i*stride)%len(sample)]
		cents[i] = append([]float32(nil), src...)
	}
	assign := make([]int, len(sample))
	for iter := 0; iter < 8; iter++ {
		for i, v := range sample {
			assign[i] = nearestCentroid(ivf.metric, cents, v)
		}
		sums := make([][]float64, n)
		counts := make([]int, n)
		for i := range sums {
			sums[i] = make([]float64, ivf.dim)
		}
		for i, v := range sample {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += float64(x)
			}
		}
		for c := 0; c < n; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := range cents[c] {
				cents[c][j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
	}
	ivf.cents = cents
	ivf.lists = make([][]int, n)
	ivf.trained = true
	return nil
}

func nearestCentroid(m Metric, cents [][]float32, v []float32) int {
	best, bestScore := 0, float32(math.Inf(-1))
	for i, c := range cents {
		if s := score(m, v, c); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Add implements Index. The index must be trained first.
func (ivf *IVF) Add(id int, vec []float32) error {
	if !ivf.trained {
		return errors.New("vector: IVF index is untrained")
	}
	if len(vec) != ivf.dim {
		return ErrDimension
	}
	pos := len(ivf.ids)
	ivf.ids = append(ivf.ids, id)
	ivf.vecs = append(ivf.vecs, vec)
	c := nearestCentroid(ivf.metric, ivf.cents, vec)
	ivf.lists[c] = append(ivf.lists[c], pos)
	return nil
}

// Len implements Index.
func (ivf *IVF) Len() int { return len(ivf.ids) }

// Search implements Index: probe the nprobe nearest clusters.
func (ivf *IVF) Search(query []float32, k int) ([]Hit, error) {
	if !ivf.trained {
		return nil, errors.New("vector: IVF index is untrained")
	}
	if len(query) != ivf.dim {
		return nil, ErrDimension
	}
	type cscore struct {
		c int
		s float32
	}
	cs := make([]cscore, len(ivf.cents))
	for i, c := range ivf.cents {
		cs[i] = cscore{c: i, s: score(ivf.metric, query, c)}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].s > cs[j].s })
	h := make(hitHeap, 0, k)
	for p := 0; p < ivf.nprobe && p < len(cs); p++ {
		for _, pos := range ivf.lists[cs[p].c] {
			s := score(ivf.metric, query, ivf.vecs[pos])
			if len(h) < k {
				heap.Push(&h, Hit{ID: ivf.ids[pos], Score: s})
			} else if s > h[0].Score {
				h[0] = Hit{ID: ivf.ids[pos], Score: s}
				heap.Fix(&h, 0)
			}
		}
	}
	out := make([]Hit, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
