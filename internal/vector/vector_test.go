package vector

import (
	"math/rand"
	"sort"
	"testing"
)

func randomVecs(r *rand.Rand, n, dim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func TestFlatExactTopK(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	dim := 16
	vecs := randomVecs(r, 200, dim)
	idx := NewFlat(dim, Cosine)
	for i, v := range vecs {
		if err := idx.Add(i*7, v); err != nil { // non-dense ids
			t.Fatal(err)
		}
	}
	if idx.Len() != 200 {
		t.Fatalf("len = %d", idx.Len())
	}
	q := randomVecs(r, 1, dim)[0]
	hits, err := idx.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 10 {
		t.Fatalf("k hits = %d", len(hits))
	}
	// Brute-force verification.
	type pair struct {
		id int
		s  float32
	}
	var all []pair
	for i, v := range vecs {
		all = append(all, pair{id: i * 7, s: score(Cosine, q, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].id < all[j].id
	})
	for i := range hits {
		if hits[i].ID != all[i].id {
			t.Fatalf("hit %d = id %d, want %d", i, hits[i].ID, all[i].id)
		}
	}
	// Scores must be non-increasing.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
}

func TestFlatMetrics(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	c := []float32{2, 0}
	for _, m := range []Metric{Cosine, Dot, L2} {
		idx := NewFlat(2, m)
		idx.Add(1, b)
		idx.Add(2, c)
		hits, err := idx.Search(a, 1)
		if err != nil || len(hits) != 1 {
			t.Fatalf("metric %v: %v", m, err)
		}
		if hits[0].ID != 2 {
			t.Errorf("metric %v: nearest to (1,0) should be (2,0), got id %d", m, hits[0].ID)
		}
	}
}

func TestFlatErrors(t *testing.T) {
	idx := NewFlat(4, Cosine)
	if err := idx.Add(1, []float32{1, 2}); err == nil {
		t.Error("dimension mismatch on Add should fail")
	}
	if _, err := idx.Search([]float32{1}, 3); err == nil {
		t.Error("dimension mismatch on Search should fail")
	}
	hits, err := idx.Search(make([]float32, 4), 0)
	if err != nil || hits != nil {
		t.Error("k=0 should return nothing")
	}
}

func TestFlatKLargerThanIndex(t *testing.T) {
	idx := NewFlat(2, Cosine)
	idx.Add(1, []float32{1, 0})
	hits, err := idx.Search([]float32{1, 0}, 10)
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = %v err = %v", hits, err)
	}
}

func TestIVFRecall(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	dim := 24
	vecs := randomVecs(r, 1000, dim)
	flat := NewFlat(dim, Cosine)
	ivf := NewIVF(dim, Cosine, 16, 8)
	if err := ivf.Train(vecs[:400]); err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		flat.Add(i, v)
		if err := ivf.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	// Probing half the lists should recover most of the true top-10.
	totalRecall := 0.0
	queries := randomVecs(r, 20, dim)
	for _, q := range queries {
		exact, _ := flat.Search(q, 10)
		approx, _ := ivf.Search(q, 10)
		exactIDs := make(map[int]bool)
		for _, h := range exact {
			exactIDs[h.ID] = true
		}
		found := 0
		for _, h := range approx {
			if exactIDs[h.ID] {
				found++
			}
		}
		totalRecall += float64(found) / 10
	}
	if avg := totalRecall / 20; avg < 0.5 {
		t.Errorf("IVF recall@10 = %.2f, want >= 0.5 with nprobe=nlist/2", avg)
	}
}

func TestIVFUntrained(t *testing.T) {
	ivf := NewIVF(8, Cosine, 4, 2)
	if err := ivf.Add(1, make([]float32, 8)); err == nil {
		t.Error("Add before Train should fail")
	}
	if _, err := ivf.Search(make([]float32, 8), 1); err == nil {
		t.Error("Search before Train should fail")
	}
	if err := ivf.Train(nil); err == nil {
		t.Error("empty training sample should fail")
	}
}

func TestIVFFullProbeMatchesFlat(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	dim := 8
	vecs := randomVecs(r, 300, dim)
	flat := NewFlat(dim, Dot)
	ivf := NewIVF(dim, Dot, 10, 10) // probe everything = exact
	if err := ivf.Train(vecs); err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		flat.Add(i, v)
		ivf.Add(i, v)
	}
	for qi := 0; qi < 10; qi++ {
		q := randomVecs(r, 1, dim)[0]
		a, _ := flat.Search(q, 5)
		b, _ := ivf.Search(q, 5)
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("full-probe IVF must equal flat: %v vs %v", a, b)
			}
		}
	}
}
