// Package pgwire implements enough of the PostgreSQL v3 wire protocol to
// serve the sqldb engine to stock Postgres clients: startup handshake
// (with SSL/GSS negotiation declined in the clear), simple Query, the
// extended Parse/Bind/Describe/Execute/Close/Flush/Sync flow, CancelRequest
// with per-session secret keys, and Terminate. One TCP connection maps to
// one session; sessions are isolated — each owns its transaction state,
// prepared statements, and portals, all backed by the engine's explicit
// Txn handles and streaming Rows cursors (never the engine's shared
// SQL-level session transaction).
//
// Documented divergences from PostgreSQL, chosen for a tighter resource
// contract (and pinned by the disconnect/leak tests):
//
//   - All result columns are sent in text format with the TEXT type OID;
//     binary format codes are rejected as feature_not_supported.
//   - Every portal is destroyed at Sync (PostgreSQL keeps named portals
//     until transaction end), so no cursor survives a protocol cycle.
//   - CancelRequest cancels the session's open portals as well as the
//     statement currently executing (PostgreSQL ignores cancels for idle
//     sessions; here a suspended portal counts as in-progress work).
//   - BEGIN inside a transaction and COMMIT/ROLLBACK outside one are
//     errors (PostgreSQL warns), matching the engine's strict semantics.
package pgwire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants (PostgreSQL v3).
const (
	protocolVersion = 196608   // 3.0
	cancelCode      = 80877102 // CancelRequest "version"
	sslCode         = 80877103 // SSLRequest
	gssEncCode      = 80877104 // GSSENCRequest

	// maxMessageLen bounds any regular frame; maxStartupLen bounds the
	// startup packet. Both exist so a hostile or corrupt length prefix
	// cannot make the server allocate unbounded memory — the fuzz harness
	// drives arbitrary bytes at these readers.
	maxMessageLen = 1 << 24
	maxStartupLen = 1 << 16
)

// Frontend message type bytes.
const (
	msgQuery     = 'Q'
	msgParse     = 'P'
	msgBind      = 'B'
	msgDescribe  = 'D'
	msgExecute   = 'E'
	msgClose     = 'C'
	msgFlush     = 'H'
	msgSync      = 'S'
	msgTerminate = 'X'
	msgPassword  = 'p'
)

// protocolError is a wire-level violation: bad framing, an unknown message
// type, an out-of-bounds length. It is fatal to the connection — the
// server reports it (when the handshake got far enough to speak the error
// format) and closes. The fuzz harnesses assert that arbitrary input
// produces these, never a panic.
type protocolError struct {
	sqlState string
	msg      string
}

func (e *protocolError) Error() string { return e.msg }

func protoErrf(format string, args ...any) *protocolError {
	return &protocolError{sqlState: "08P01", msg: fmt.Sprintf(format, args...)}
}

// readStartup reads one startup-phase packet: a 4-byte length (inclusive
// of itself) followed by a 4-byte code and the payload. SSLRequest,
// GSSENCRequest, CancelRequest, and StartupMessage all share this shape.
func readStartup(r io.Reader) (code uint32, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 8 || n > maxStartupLen {
		return 0, nil, protoErrf("invalid startup packet length %d", n)
	}
	body := make([]byte, n-4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return binary.BigEndian.Uint32(body[:4]), body[4:], nil
}

// readMessage reads one regular frame: a type byte, a 4-byte length
// (inclusive of itself, exclusive of the type byte), and the payload.
func readMessage(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n < 4 || n > maxMessageLen {
		return 0, nil, protoErrf("invalid message length %d for %q", n, hdr[0])
	}
	body := make([]byte, n-4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// msgReader decodes a frame payload field by field. The first decode
// error sticks; callers check err once after pulling every field, and
// a stuck reader yields zero values so decoding never panics on
// truncated input.
type msgReader struct {
	buf []byte
	pos int
	err error
}

func (r *msgReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = protoErrf(format, args...)
	}
}

func (r *msgReader) int8() byte {
	if r.err != nil || r.pos+1 > len(r.buf) {
		r.fail("truncated message: want 1 byte at %d", r.pos)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *msgReader) int16() int {
	if r.err != nil || r.pos+2 > len(r.buf) {
		r.fail("truncated message: want int16 at %d", r.pos)
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return int(v)
}

func (r *msgReader) int32() int32 {
	if r.err != nil || r.pos+4 > len(r.buf) {
		r.fail("truncated message: want int32 at %d", r.pos)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return int32(v)
}

// cstring reads a NUL-terminated string.
func (r *msgReader) cstring() string {
	if r.err != nil {
		return ""
	}
	for i := r.pos; i < len(r.buf); i++ {
		if r.buf[i] == 0 {
			s := string(r.buf[r.pos:i])
			r.pos = i + 1
			return s
		}
	}
	r.fail("unterminated string at %d", r.pos)
	return ""
}

// bytes reads exactly n bytes (a Bind parameter value).
func (r *msgReader) bytes(n int) []byte {
	if n < 0 {
		r.fail("negative field length %d", n)
		return nil
	}
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail("truncated message: want %d bytes at %d", n, r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// msgWriter accumulates backend frames: each frame is opened with start,
// built field by field, and sealed by finish, which back-patches the
// 4-byte length (covering everything after the type byte, itself
// included). Frames never nest.
type msgWriter struct {
	buf   []byte
	frame int // offset of the current frame's type byte
}

func (w *msgWriter) start(typ byte) {
	w.frame = len(w.buf)
	w.buf = append(w.buf, typ, 0, 0, 0, 0)
}

func (w *msgWriter) finish() {
	binary.BigEndian.PutUint32(w.buf[w.frame+1:], uint32(len(w.buf)-w.frame-1))
}

func (w *msgWriter) byte1(b byte)      { w.buf = append(w.buf, b) }
func (w *msgWriter) int16(v int)       { w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(v)) }
func (w *msgWriter) int32(v int32)     { w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v)) }
func (w *msgWriter) cstring(s string)  { w.buf = append(append(w.buf, s...), 0) }
func (w *msgWriter) rawBytes(b []byte) { w.buf = append(w.buf, b...) }
