package pgwire

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"tag/internal/server/pgwire/pgwiretest"
	"tag/internal/sqldb"
)

// The engine's SQLancer-style metamorphic suite (NoREC, TLP, interleaved
// DML — internal/sqldb/metamorphic_test.go), re-run through a wire
// connection against the same database, with two additional demands:
//
//   - Every query's wire result is bit-identical to in-process execution
//     of the same SQL at the same moment (both render via Value.AsText
//     with explicit NULL flags, so any divergence is a wire bug).
//   - The properties also hold for queries executed mid-transaction over
//     the wire, where only the wire session can see the uncommitted
//     writes (compared wire-vs-wire), and after COMMIT the in-process
//     view converges.

// wirePred mirrors metamorphicPred over the same column shapes.
func wirePred(r *rand.Rand) string {
	atoms := []string{
		fmt.Sprintf("a = %d", r.Intn(30)),
		fmt.Sprintf("a > %d", r.Intn(30)),
		fmt.Sprintf("a BETWEEN %d AND %d", r.Intn(15), 15+r.Intn(15)),
		"a = NULL",
		"a IS NULL",
		"a IS NOT NULL",
		fmt.Sprintf("b > %d", r.Intn(50)),
		fmt.Sprintf("b * 2 < %d", r.Intn(60)),
		fmt.Sprintf("c LIKE '%%%c%%'", 'a'+rune(r.Intn(5))),
		fmt.Sprintf("c IN ('ant', 'bee', '%c')", 'a'+rune(r.Intn(5))),
		fmt.Sprintf("id %% %d = %d", 2+r.Intn(5), r.Intn(3)),
	}
	p := atoms[r.Intn(len(atoms))]
	for r.Intn(3) == 0 {
		op := "AND"
		if r.Intn(2) == 0 {
			op = "OR"
		}
		next := atoms[r.Intn(len(atoms))]
		if r.Intn(4) == 0 {
			next = "NOT (" + next + ")"
		}
		p = fmt.Sprintf("(%s %s %s)", p, op, next)
	}
	return p
}

// wireQuery runs sql over the wire and returns the rendered rows,
// failing the test on any error.
func wireQuery(t *testing.T, c *pgwiretest.Conn, sql string) []string {
	t.Helper()
	return wireRows(mustQuery(t, c, sql))
}

// multiset sorts a rendered row list into multiset form.
func multiset(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

// checkWireNoREC asserts NoREC through the wire: the WHERE-filtered count
// equals the per-row TRUE count of the projected predicate.
func checkWireNoREC(t *testing.T, c *pgwiretest.Conn, pred string) {
	t.Helper()
	filtered := wireQuery(t, c, "SELECT COUNT(*) FROM m WHERE "+pred)
	optimized, err := strconv.ParseInt(filtered[0], 10, 64)
	if err != nil {
		t.Fatalf("NoREC count not an int: %q", filtered[0])
	}
	projected := wireQuery(t, c, "SELECT ("+pred+") FROM m")
	var unoptimized int64
	for _, row := range projected {
		if row == "true" {
			unoptimized++
		}
	}
	if optimized != unoptimized {
		t.Fatalf("NoREC violated over wire for %q: WHERE count %d != per-row count %d",
			pred, optimized, unoptimized)
	}
}

// checkWireTLP asserts TLP through the wire: the three partitions union
// to the unfiltered table.
func checkWireTLP(t *testing.T, c *pgwiretest.Conn, pred string) {
	t.Helper()
	full := multiset(wireQuery(t, c, "SELECT id, a, b, c FROM m"))
	var parts []string
	for _, where := range []string{
		"(" + pred + ")",
		"NOT (" + pred + ")",
		"(" + pred + ") IS NULL",
	} {
		parts = append(parts, wireQuery(t, c, "SELECT id, a, b, c FROM m WHERE "+where)...)
	}
	if got := multiset(parts); !reflect.DeepEqual(got, full) {
		t.Fatalf("TLP violated over wire for %q: partitions %d rows vs table %d",
			pred, len(got), len(full))
	}
}

// assertWireMatchesEngine runs sql both ways and demands bit-identical
// multisets.
func assertWireMatchesEngine(t *testing.T, c *pgwiretest.Conn, db *sqldb.Database, sql string) {
	t.Helper()
	wire := multiset(wireQuery(t, c, sql))
	engine := multiset(engineRows(t, db, sql))
	if !reflect.DeepEqual(wire, engine) {
		t.Fatalf("wire diverges from engine on %q:\nwire   = %q\nengine = %q", sql, wire, engine)
	}
}

func seedMetamorphic(t *testing.T, c *pgwiretest.Conn, r *rand.Rand, nextID *int) {
	t.Helper()
	mustQuery(t, c, "CREATE TABLE m (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, c TEXT)")
	mustQuery(t, c, "CREATE INDEX idx_m_a ON m (a)")
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	for i := 0; i < 60; i++ {
		a := "NULL"
		if r.Intn(7) != 0 {
			a = strconv.Itoa(r.Intn(30))
		}
		mustQuery(t, c, fmt.Sprintf("INSERT INTO m VALUES (%d, %s, %d, '%s')",
			*nextID, a, r.Intn(50), words[r.Intn(len(words))]))
		*nextID++
	}
}

func metamorphicDML(r *rand.Rand, nextID *int) string {
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	switch r.Intn(5) {
	case 0, 1:
		a := "NULL"
		if r.Intn(7) != 0 {
			a = strconv.Itoa(r.Intn(30))
		}
		sql := fmt.Sprintf("INSERT INTO m VALUES (%d, %s, %d, '%s')",
			*nextID, a, r.Intn(50), words[r.Intn(len(words))])
		*nextID++
		return sql
	case 2:
		return fmt.Sprintf("UPDATE m SET a = %d WHERE id %% 7 = %d", r.Intn(30), r.Intn(7))
	case 3:
		return fmt.Sprintf("DELETE FROM m WHERE id = %d", r.Intn(*nextID+1))
	default:
		return fmt.Sprintf("DELETE FROM m WHERE a BETWEEN %d AND %d", r.Intn(28), r.Intn(4))
	}
}

// TestWireMetamorphicNoRECAndTLP: DML applied over the wire, properties
// checked over the wire, and every check's inputs verified bit-identical
// to in-process execution.
func TestWireMetamorphicNoRECAndTLP(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	c := dial(t, addr)
	r := rand.New(rand.NewSource(7))
	nextID := 0
	seedMetamorphic(t, c, r, &nextID)

	steps := 25
	if testing.Short() {
		steps = 6
	}
	for step := 0; step < steps; step++ {
		mustQuery(t, c, metamorphicDML(r, &nextID))
		pred := wirePred(r)
		checkWireNoREC(t, c, pred)
		checkWireTLP(t, c, pred)
		assertWireMatchesEngine(t, c, db, "SELECT id, a, b, c FROM m")
		assertWireMatchesEngine(t, c, db, "SELECT COUNT(*) FROM m WHERE "+pred)
	}
}

// TestWireMetamorphicInTransactions runs the same properties with the
// DML inside explicit wire transactions: mid-transaction the wire session
// is the only observer of its own writes (the engine's autocommit view
// must NOT see them); after COMMIT the views converge bit-identically;
// after ROLLBACK the table's multiset is exactly the pre-BEGIN one.
func TestWireMetamorphicInTransactions(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	c := dial(t, addr)
	r := rand.New(rand.NewSource(11))
	nextID := 0
	seedMetamorphic(t, c, r, &nextID)

	steps := 15
	if testing.Short() {
		steps = 4
	}
	for step := 0; step < steps; step++ {
		before := multiset(engineRows(t, db, "SELECT id, a, b, c FROM m"))
		commit := r.Intn(2) == 0

		mustQuery(t, c, "BEGIN")
		dml := metamorphicDML(r, &nextID)
		res := mustQuery(t, c, dml)
		changed := len(res.Tags) == 1 && res.Tags[0] != "UPDATE 0" &&
			res.Tags[0] != "DELETE 0" && res.Tags[0] != "INSERT 0 0"

		// Mid-transaction: properties hold on the wire view (which
		// includes the uncommitted write)...
		pred := wirePred(r)
		checkWireNoREC(t, c, pred)
		checkWireTLP(t, c, pred)
		// ...while the engine's autocommit view still sees the old state.
		outside := multiset(engineRows(t, db, "SELECT id, a, b, c FROM m"))
		if !reflect.DeepEqual(outside, before) {
			t.Fatalf("step %d: uncommitted wire write leaked to autocommit view", step)
		}

		if commit {
			mustQuery(t, c, "COMMIT")
			assertWireMatchesEngine(t, c, db, "SELECT id, a, b, c FROM m")
			after := multiset(engineRows(t, db, "SELECT id, a, b, c FROM m"))
			if changed && reflect.DeepEqual(after, before) {
				// A mutating DML that committed must be visible; a no-op
				// (e.g. DELETE matching nothing) legitimately is not.
				if res.Tags[0][0] != 'U' { // UPDATE can rewrite equal values
					t.Fatalf("step %d: committed %s (%s) invisible after COMMIT", step, dml, res.Tags[0])
				}
			}
		} else {
			mustQuery(t, c, "ROLLBACK")
			after := multiset(engineRows(t, db, "SELECT id, a, b, c FROM m"))
			if !reflect.DeepEqual(after, before) {
				t.Fatalf("step %d: ROLLBACK did not restore table\nbefore = %q\nafter  = %q",
					step, before, after)
			}
			assertWireMatchesEngine(t, c, db, "SELECT id, a, b, c FROM m")
		}
	}
}

// TestWireMetamorphicExtendedProtocol re-checks NoREC through the
// extended protocol with the predicate's comparison value bound as a
// parameter — the prepared-statement path must agree with the simple
// path and with in-process execution.
func TestWireMetamorphicExtendedProtocol(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	c := dial(t, addr)
	r := rand.New(rand.NewSource(13))
	nextID := 0
	seedMetamorphic(t, c, r, &nextID)

	steps := 20
	if testing.Short() {
		steps = 5
	}
	for step := 0; step < steps; step++ {
		mustQuery(t, c, metamorphicDML(r, &nextID))
		bound := r.Intn(30)

		c.SendParse("", "SELECT COUNT(*) FROM m WHERE a > ?", []int32{23})
		c.SendBind("", "", []*string{pgwiretest.Str(strconv.Itoa(bound))})
		c.SendExecute("", 0)
		c.SendSync()
		res, err := c.Collect()
		if err != nil || res.Err != nil {
			t.Fatalf("step %d: extended count: %v / %v", step, err, res.Err)
		}
		extRows := wireRows(res)

		simple := wireQuery(t, c, fmt.Sprintf("SELECT COUNT(*) FROM m WHERE a > %d", bound))
		engine := engineRows(t, db, "SELECT COUNT(*) FROM m WHERE a > ?", bound)
		if !reflect.DeepEqual(extRows, simple) || !reflect.DeepEqual(extRows, engine) {
			t.Fatalf("step %d: a > %d diverges: extended %q simple %q engine %q",
				step, bound, extRows, simple, engine)
		}
	}
}
