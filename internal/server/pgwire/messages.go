package pgwire

import (
	"bufio"
	"net"

	"tag/internal/sqldb"
)

// backend serializes server→client messages onto a connection. All
// writes go through the buffered writer; flush points follow the
// protocol's own rules (end of response cycle, Flush message) so a
// streaming result does not pay a syscall per row.
type backend struct {
	conn net.Conn
	bw   *bufio.Writer
	w    msgWriter
}

func newBackend(conn net.Conn) *backend {
	return &backend{conn: conn, bw: bufio.NewWriterSize(conn, 16<<10)}
}

// send seals the frame under construction and hands it to the buffered
// writer (flushing is separate).
func (b *backend) send() error {
	b.w.finish()
	_, err := b.bw.Write(b.w.buf)
	b.w.buf = b.w.buf[:0]
	return err
}

func (b *backend) flush() error { return b.bw.Flush() }

// textOID is the only result type this server declares: every column is
// rendered through Value.AsText, which is also exactly how the in-process
// API renders — the wire conformance suite leans on that to demand
// bit-identical results.
const textOID = 25

// Parameter type OIDs the binder understands (anything else, including 0
// for "unspecified", binds as text).
const (
	boolOID    = 16
	int8OID    = 20
	int2OID    = 21
	int4OID    = 23
	float4OID  = 700
	float8OID  = 701
	numericOID = 1700
)

func (b *backend) authenticationOk() error {
	b.w.start('R')
	b.w.int32(0)
	return b.send()
}

func (b *backend) authenticationCleartext() error {
	b.w.start('R')
	b.w.int32(3)
	return b.send()
}

func (b *backend) parameterStatus(key, val string) error {
	b.w.start('S')
	b.w.cstring(key)
	b.w.cstring(val)
	return b.send()
}

func (b *backend) backendKeyData(pid, secret int32) error {
	b.w.start('K')
	b.w.int32(pid)
	b.w.int32(secret)
	return b.send()
}

// readyForQuery carries the transaction status byte: 'I' idle, 'T' in a
// transaction, 'E' in a failed transaction.
func (b *backend) readyForQuery(status byte) error {
	b.w.start('Z')
	b.w.byte1(status)
	if err := b.send(); err != nil {
		return err
	}
	return b.flush()
}

func (b *backend) rowDescription(cols []string) error {
	b.w.start('T')
	b.w.int16(len(cols))
	for _, c := range cols {
		b.w.cstring(c)
		b.w.int32(0)       // table OID (none: results are computed)
		b.w.int16(0)       // attribute number
		b.w.int32(textOID) // type OID
		b.w.int16(-1)      // type length (variable)
		b.w.int32(-1)      // type modifier
		b.w.int16(0)       // format: text
	}
	return b.send()
}

// dataRow renders one engine row: NULL as length -1, everything else as
// its AsText bytes.
func (b *backend) dataRow(row sqldb.Row) error {
	b.w.start('D')
	b.w.int16(len(row))
	for _, v := range row {
		if v.IsNull() {
			b.w.int32(-1)
			continue
		}
		s := v.AsText()
		b.w.int32(int32(len(s)))
		b.w.rawBytes([]byte(s))
	}
	return b.send()
}

func (b *backend) commandComplete(tag string) error {
	b.w.start('C')
	b.w.cstring(tag)
	return b.send()
}

func (b *backend) emptyQueryResponse() error {
	b.w.start('I')
	return b.send()
}

func (b *backend) parseComplete() error {
	b.w.start('1')
	return b.send()
}

func (b *backend) bindComplete() error {
	b.w.start('2')
	return b.send()
}

func (b *backend) closeComplete() error {
	b.w.start('3')
	return b.send()
}

func (b *backend) noData() error {
	b.w.start('n')
	return b.send()
}

func (b *backend) portalSuspended() error {
	b.w.start('s')
	return b.send()
}

func (b *backend) parameterDescription(oids []int32) error {
	b.w.start('t')
	b.w.int16(len(oids))
	for _, oid := range oids {
		b.w.int32(oid)
	}
	return b.send()
}

// errorResponse sends the S/V/C/M field set every client understands.
func (b *backend) errorResponse(severity, sqlState, msg string) error {
	b.w.start('E')
	b.w.byte1('S')
	b.w.cstring(severity)
	b.w.byte1('V')
	b.w.cstring(severity)
	b.w.byte1('C')
	b.w.cstring(sqlState)
	b.w.byte1('M')
	b.w.cstring(msg)
	b.w.byte1(0)
	return b.send()
}
