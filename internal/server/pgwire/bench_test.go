package pgwire

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"tag/internal/server/pgwire/pgwiretest"
	"tag/internal/sqldb"
)

// benchServer is startServer for benchmarks: same loopback server, same
// teardown, minus the leak assertions (the tests own those).
func benchServer(b *testing.B) (*sqldb.Database, string) {
	b.Helper()
	db := sqldb.NewDatabase()
	srv := NewServer(db, Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
		db.Close()
	})
	return db, lis.Addr().String()
}

// BenchmarkWireQuery measures a full simple-query round trip — frame
// encode, TCP, parse, plan, execute, row encode, ReadyForQuery — for a
// point lookup on a warm connection. Compare with the in-process
// BenchmarkPointLookup in internal/sqldb to see the wire tax.
func BenchmarkWireQuery(b *testing.B) {
	db, addr := benchServer(b)
	db.MustExec(`CREATE TABLE bq (id INTEGER PRIMARY KEY, v TEXT)`)
	tx := db.Begin()
	for i := 0; i < 1000; i++ {
		if _, err := tx.Exec(`INSERT INTO bq VALUES (?, ?)`, i, fmt.Sprintf("val%04d", i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	c, err := pgwiretest.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Query(fmt.Sprintf(`SELECT v FROM bq WHERE id = %d`, i%1000))
		if err != nil || res.Err != nil {
			b.Fatalf("query: %v / %v", err, res.Err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}

// BenchmarkWireConnSetup measures the full connection lifecycle: TCP
// dial, startup handshake, parameter statuses, key data, first
// ReadyForQuery, and a clean Terminate.
func BenchmarkWireConnSetup(b *testing.B) {
	_, addr := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := pgwiretest.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		c.Terminate()
	}
}
