package pgwire

import (
	"fmt"
	"net"
	"testing"
	"time"

	"tag/internal/server/pgwire/pgwiretest"
	"tag/internal/sqldb"
)

// The disconnect matrix: kill the connection at every protocol state and
// demand the server unwinds completely — transaction rolled back, every
// snapshot released, every cursor closed, every parallel worker joined.
// Each scenario is one entry; after it runs, the harness polls sessions
// to zero and asserts the engine counters. This is the wire-level
// analogue of the WAL crash-point matrix: the crash is a vanished peer
// instead of a failed fsync.

// waitSessionsGone polls until the server has no sessions, then asserts
// the engine leaked nothing.
func waitSessionsGone(t *testing.T, srv *Server, db *sqldb.Database, scenario string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d sessions never unwound", scenario, srv.ActiveSessions())
		}
		time.Sleep(time.Millisecond)
	}
	if n := db.LiveSnapshots(); n != 0 {
		t.Fatalf("%s: leaked %d live snapshots", scenario, n)
	}
	st := db.Stats()
	if st.OpenCursors != 0 {
		t.Fatalf("%s: leaked %d open cursors", scenario, st.OpenCursors)
	}
	if st.ActiveTxns != 0 {
		t.Fatalf("%s: leaked %d active transactions", scenario, st.ActiveTxns)
	}
	if n := sqldb.LiveParallelWorkers(); n != 0 {
		t.Fatalf("%s: leaked %d parallel workers", scenario, n)
	}
}

func TestDisconnectMatrix(t *testing.T) {
	srv, db, addr := startServer(t, Options{})
	db.MustExec(`CREATE TABLE d (id INTEGER, v TEXT)`)
	tx := db.Begin()
	for i := 0; i < 3000; i++ {
		if _, err := tx.Exec(`INSERT INTO d VALUES (?, ?)`, i, fmt.Sprintf("v%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	scenarios := []struct {
		name string
		kill func(t *testing.T)
	}{
		{"mid-startup-length", func(t *testing.T) {
			// Close after sending only half the startup length prefix.
			nc := rawDial(t, addr)
			nc.Write([]byte{0, 0})
			nc.Close()
		}},
		{"mid-startup-body", func(t *testing.T) {
			// Announce a startup packet, deliver only part of it.
			nc := rawDial(t, addr)
			nc.Write([]byte{0, 0, 0, 50, 0, 3, 0, 0, 'u', 's'})
			nc.Close()
		}},
		{"after-ssl-probe", func(t *testing.T) {
			nc := rawDial(t, addr)
			nc.Write([]byte{0, 0, 0, 8, 4, 210, 22, 47})
			buf := make([]byte, 1)
			nc.Read(buf)
			nc.Close()
		}},
		{"idle-after-handshake", func(t *testing.T) {
			c := testDial(t, addr)
			c.Close()
		}},
		{"mid-row-stream", func(t *testing.T) {
			// Ask for the whole table, read a little, vanish. The server's
			// next write fails and the session must still release its
			// cursor and snapshot.
			c := testDial(t, addr)
			c.RawWrite(frameMsg('Q', appendC(nil, `SELECT id, v FROM d ORDER BY id`)))
			buf := make([]byte, 256)
			c.NetConn().Read(buf)
			c.Close()
		}},
		{"open-transaction", func(t *testing.T) {
			c := testDial(t, addr)
			mustQueryF(t, c, `BEGIN`)
			mustQueryF(t, c, `INSERT INTO d VALUES (99999, 'doomed')`)
			c.Close()
		}},
		{"failed-transaction", func(t *testing.T) {
			c := testDial(t, addr)
			mustQueryF(t, c, `BEGIN`)
			c.Query(`SELECT nope FROM d`) // moves the txn to failed state
			c.Close()
		}},
		{"suspended-portal", func(t *testing.T) {
			// A suspended portal holds an open cursor and its snapshot;
			// the disconnect must release both.
			c := testDial(t, addr)
			c.SendParse("", `SELECT id FROM d ORDER BY id`, nil)
			c.SendBind("", "", nil)
			c.SendExecute("", 5)
			c.SendFlush()
			waitFor(t, c, 's')
			c.Close()
		}},
		{"suspended-portal-in-txn", func(t *testing.T) {
			c := testDial(t, addr)
			mustQueryF(t, c, `BEGIN`)
			mustQueryF(t, c, `UPDATE d SET v = 'x' WHERE id = 0`)
			c.SendParse("", `SELECT id FROM d ORDER BY id`, nil)
			c.SendBind("", "", nil)
			c.SendExecute("", 5)
			c.SendFlush()
			waitFor(t, c, 's')
			c.Close()
		}},
		{"mid-extended-cycle", func(t *testing.T) {
			// Parse+Bind sent, no Execute or Sync: the bound portal dies
			// with the connection.
			c := testDial(t, addr)
			c.SendParse("", `SELECT id FROM d`, nil)
			c.SendBind("", "", nil)
			c.SendFlush()
			waitFor(t, c, '2')
			c.Close()
		}},
		{"garbage-frame", func(t *testing.T) {
			// A nonsense message type is a fatal protocol error; the
			// server reports and closes without leaking.
			c := testDial(t, addr)
			mustQueryF(t, c, `BEGIN`)
			c.RawWrite([]byte{0x7f, 0, 0, 0, 4})
			c.Close()
		}},
		{"oversized-frame", func(t *testing.T) {
			// A length prefix beyond the bound is rejected, not allocated.
			c := testDial(t, addr)
			c.RawWrite([]byte{'Q', 0xff, 0xff, 0xff, 0xff})
			c.Close()
		}},
		{"graceful-terminate", func(t *testing.T) {
			c := testDial(t, addr)
			mustQueryF(t, c, `BEGIN`)
			mustQueryF(t, c, `INSERT INTO d VALUES (88888, 'bye')`)
			c.Terminate() // even a polite goodbye rolls back the open txn
		}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			sc.kill(t)
			waitSessionsGone(t, srv, db, sc.name)
		})
	}

	// Nothing any killed connection did inside a transaction survived.
	rows := engineRows(t, db, `SELECT count(*) FROM d WHERE id >= 88888`)
	if rows[0] != "0" {
		t.Fatalf("rolled-back writes visible: %v", rows)
	}
	// The mid-stream update never committed either.
	rows = engineRows(t, db, `SELECT v FROM d WHERE id = 0`)
	if rows[0] != "v0000" {
		t.Fatalf("uncommitted update visible: %v", rows)
	}
}

func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

// testDial is dial without the test-scoped cleanup (the scenario closes
// the connection itself).
func testDial(t *testing.T, addr string) *pgwiretest.Conn {
	t.Helper()
	c, err := pgwiretest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustQueryF(t *testing.T, c *pgwiretest.Conn, sql string) {
	t.Helper()
	res, err := c.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if res.Err != nil {
		t.Fatalf("%s: %v", sql, res.Err)
	}
}

// waitFor reads messages until typ arrives (failing on error frames).
func waitFor(t *testing.T, c *pgwiretest.Conn, typ byte) {
	t.Helper()
	for {
		m, err := c.ReadMsg()
		if err != nil {
			t.Fatalf("waiting for %q: %v", typ, err)
		}
		if m.Type == 'E' {
			t.Fatalf("waiting for %q: got error frame", typ)
		}
		if m.Type == typ {
			return
		}
	}
}

// TestShutdownWithOpenTransactions: a forced shutdown (expired context)
// cancels in-flight statements, rolls back open transactions, and leaks
// nothing — the startServer cleanup asserts the counters.
func TestShutdownAbortsOpenWork(t *testing.T) {
	srv, db, addr := startServer(t, Options{})
	db.MustExec(`CREATE TABLE s (a INTEGER)`)
	db.MustExec(`INSERT INTO s VALUES (1), (2), (3)`)

	c := testDial(t, addr)
	defer c.Close()
	mustQueryF(t, c, `BEGIN`)
	mustQueryF(t, c, `INSERT INTO s VALUES (4)`)

	// Suspended portal on a second connection.
	c2 := testDial(t, addr)
	defer c2.Close()
	c2.SendParse("", `SELECT a FROM s`, nil)
	c2.SendBind("", "", nil)
	c2.SendExecute("", 1)
	c2.SendFlush()
	waitFor(t, c2, 's')

	// The startServer cleanup drains with a 5s budget; both sessions are
	// idle at the protocol level, so the drain nudges them out and the
	// open transaction rolls back.
	_ = srv
}
