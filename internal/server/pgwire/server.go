package pgwire

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tag/internal/sqldb"
)

// Options configures a Server.
type Options struct {
	// MaxConns caps concurrent sessions; further connections complete the
	// startup handshake and are refused with SQLSTATE 53300. Zero means
	// unlimited.
	MaxConns int
	// Password, when non-empty, demands cleartext password authentication
	// at startup; empty trusts every connection.
	Password string
}

// Server accepts TCP connections and speaks the Postgres v3 wire protocol
// against one engine database. Create with NewServer, drive with Serve
// (blocking, like net/http), stop with Shutdown (graceful drain) or
// Close (immediate).
type Server struct {
	db   *sqldb.Database
	opts Options

	// baseCtx parents every statement context; baseCancel is the force-
	// shutdown switch that aborts all in-flight statements at once.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	lis      net.Listener
	sessions map[int32]*session
	conns    map[int32]net.Conn
	nextPID  int32
	drain    bool

	wg sync.WaitGroup
}

// NewServer wraps db in a wire-protocol front end. The database is shared
// with any in-process callers; wire sessions use explicit transaction
// handles, so they never collide with (or observe) the engine's SQL-level
// session transaction.
func NewServer(db *sqldb.Database, opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:         db,
		opts:       opts,
		baseCtx:    ctx,
		baseCancel: cancel,
		sessions:   make(map[int32]*session),
		conns:      make(map[int32]net.Conn),
		nextPID:    1,
	}
}

// Serve accepts connections on lis until Shutdown or Close. It returns
// nil after a shutdown, or the accept error that stopped it.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.drain {
		s.mu.Unlock()
		return errors.New("pgwire: server is shut down")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.draining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain
}

// ActiveSessions reports the number of established sessions — the
// disconnect tests poll it to zero before asserting the engine leaked
// nothing.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Shutdown drains the server: the listener closes, every session is
// nudged out of its blocking read and told 57P01 between commands, and
// Shutdown waits for them to finish. When ctx expires first, all
// remaining statements are cancelled and connections force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.drain = true
	if s.lis != nil {
		s.lis.Close()
	}
	for _, conn := range s.conns {
		// Unblock sessions parked in readMessage; they observe drain and
		// say goodbye. Mid-statement sessions finish their write first —
		// the deadline only affects reads.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // abort in-flight statements
		s.mu.Lock()
		for _, conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close force-stops the server without draining.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// register installs an established session; it fails when the server is
// draining or full.
func (s *Server) register(sess *session, conn net.Conn) *wireError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drain {
		return fatalErrf(stateAdminShutdown, "the database system is shutting down")
	}
	if s.opts.MaxConns > 0 && len(s.sessions) >= s.opts.MaxConns {
		return fatalErrf(stateTooManyConnections,
			fmt.Sprintf("sorry, too many clients already (max %d)", s.opts.MaxConns))
	}
	s.sessions[sess.pid] = sess
	s.conns[sess.pid] = conn
	return nil
}

func (s *Server) unregister(pid int32) {
	s.mu.Lock()
	delete(s.sessions, pid)
	delete(s.conns, pid)
	s.mu.Unlock()
}

// cancelSession services a CancelRequest: the secret must match the
// BackendKeyData the session was issued, else the request is ignored
// (never answered — per protocol, cancel connections get no response).
func (s *Server) cancelSession(pid, secret int32) {
	s.mu.Lock()
	sess := s.sessions[pid]
	s.mu.Unlock()
	if sess != nil && sess.secret == secret {
		sess.cancelAll()
	}
}

// issueKeys allocates the pid/secret pair for BackendKeyData. The secret
// comes from crypto/rand: it is the only thing standing between a
// CancelRequest and someone else's query.
func (s *Server) issueKeys() (pid, secret int32) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err == nil {
		secret = int32(binary.BigEndian.Uint32(b[:]))
	}
	s.mu.Lock()
	pid = s.nextPID
	s.nextPID++
	s.mu.Unlock()
	return pid, secret
}
