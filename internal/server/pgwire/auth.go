package pgwire

import (
	"time"
)

import "net"

// handleConn owns one TCP connection from accept to close: startup
// negotiation (SSL/GSS declined, CancelRequest serviced, StartupMessage
// parsed), authentication, session registration, the message loop, and
// teardown. Every return path releases everything the connection
// acquired — the disconnect matrix kills connections at each of these
// stages and asserts zero engine-side leaks.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	be := newBackend(conn)

	// Startup negotiation. The loop is bounded: a client may try SSL and
	// GSS encryption once each before the real StartupMessage; anything
	// longer is hostile input.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var params map[string]string
	for attempt := 0; ; attempt++ {
		if attempt > 2 {
			return
		}
		code, payload, err := readStartup(conn)
		if err != nil {
			return // junk framing: close without speaking the error format
		}
		switch code {
		case sslCode, gssEncCode:
			// Declined in the clear; the client retries with a plain
			// startup on the same connection.
			if _, err := conn.Write([]byte{'N'}); err != nil {
				return
			}
			continue
		case cancelCode:
			r := msgReader{buf: payload}
			pid := r.int32()
			secret := r.int32()
			if r.err == nil {
				s.cancelSession(pid, secret)
			}
			return // cancel connections get no response, per protocol
		case protocolVersion:
			params = parseStartupParams(payload)
		default:
			// Can't speak the v3 error format to a client that didn't ask
			// for v3 — but try anyway; real clients tolerate it.
			be.errorResponse("FATAL", stateProtocolViolation,
				"unsupported protocol version")
			be.flush()
			return
		}
		break
	}
	conn.SetReadDeadline(time.Time{})

	if s.opts.Password != "" {
		if !s.authenticate(conn, be) {
			return
		}
	}

	pid, secret := s.issueKeys()
	sess := newSession(s, be, pid, secret)
	if we := s.register(sess, conn); we != nil {
		be.errorResponse(we.severity, we.sqlState, we.msg)
		be.flush()
		return
	}
	defer s.unregister(pid)
	defer sess.teardown()

	if err := be.authenticationOk(); err != nil {
		return
	}
	status := [][2]string{
		{"server_version", "13.0 (tagdb)"},
		{"server_encoding", "UTF8"},
		{"client_encoding", "UTF8"},
		{"DateStyle", "ISO"},
		{"integer_datetimes", "on"},
		{"standard_conforming_strings", "on"},
	}
	if user := params["user"]; user != "" {
		status = append(status, [2]string{"session_authorization", user})
	}
	for _, kv := range status {
		if err := be.parameterStatus(kv[0], kv[1]); err != nil {
			return
		}
	}
	if err := be.backendKeyData(pid, secret); err != nil {
		return
	}
	if err := be.readyForQuery('I'); err != nil {
		return
	}
	sess.run()
}

// authenticate runs the cleartext password exchange. Returns false (after
// reporting) on any failure; the caller closes the connection.
func (s *Server) authenticate(conn net.Conn, be *backend) bool {
	if err := be.authenticationCleartext(); err != nil {
		return false
	}
	if err := be.flush(); err != nil {
		return false
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := readMessage(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil || typ != msgPassword {
		be.errorResponse("FATAL", stateProtocolViolation, "expected password response")
		be.flush()
		return false
	}
	r := msgReader{buf: payload}
	pw := r.cstring()
	if r.err != nil || pw != s.opts.Password {
		be.errorResponse("FATAL", stateInvalidPassword, "password authentication failed")
		be.flush()
		return false
	}
	return true
}

// parseStartupParams decodes the key/value tail of a StartupMessage.
func parseStartupParams(payload []byte) map[string]string {
	params := make(map[string]string)
	r := msgReader{buf: payload}
	for {
		key := r.cstring()
		if r.err != nil || key == "" {
			return params
		}
		params[key] = r.cstring()
		if r.err != nil {
			return params
		}
	}
}
