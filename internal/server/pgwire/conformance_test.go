package pgwire

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"tag/internal/server/pgwire/pgwiretest"
	"tag/internal/sqldb"
)

// startServer boots a wire server on a loopback port over a fresh engine
// database and tears both down with the test. The cleanup asserts the
// leak-freedom contract on every test that uses it: once all sessions are
// gone, the engine must hold zero snapshots, cursors, transactions, and
// parallel workers.
func startServer(t *testing.T, opts Options, dbOpts ...sqldb.Option) (*Server, *sqldb.Database, string) {
	t.Helper()
	db := sqldb.NewDatabase(dbOpts...)
	srv := NewServer(db, opts)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
		assertNoLeaks(t, srv, db)
		db.Close()
	})
	return srv, db, lis.Addr().String()
}

// assertNoLeaks waits for every session to unwind, then checks the
// engine's resource counters.
func assertNoLeaks(t *testing.T, srv *Server, db *sqldb.Database) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions never drained: %d still active", srv.ActiveSessions())
		}
		time.Sleep(time.Millisecond)
	}
	if n := db.LiveSnapshots(); n != 0 {
		t.Errorf("leaked %d live snapshots", n)
	}
	st := db.Stats()
	if st.OpenCursors != 0 {
		t.Errorf("leaked %d open cursors", st.OpenCursors)
	}
	if st.ActiveTxns != 0 {
		t.Errorf("leaked %d active transactions", st.ActiveTxns)
	}
	if n := sqldb.LiveParallelWorkers(); n != 0 {
		t.Errorf("leaked %d parallel workers", n)
	}
}

func dial(t *testing.T, addr string) *pgwiretest.Conn {
	t.Helper()
	c, err := pgwiretest.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// mustQuery runs a simple query and fails the test on any server error.
func mustQuery(t *testing.T, c *pgwiretest.Conn, sql string) *pgwiretest.Result {
	t.Helper()
	res, err := c.Query(sql)
	if err != nil {
		t.Fatalf("query %q: transport error %v", sql, err)
	}
	if res.Err != nil {
		t.Fatalf("query %q: %v", sql, res.Err)
	}
	return res
}

// wireRows renders a wire result the same way the in-process harness
// renders engine rows: AsText with an explicit NULL marker, row by row.
func wireRows(res *pgwiretest.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, cell := range row {
			if cell == nil {
				parts[i] = "\x00NULL"
			} else {
				parts[i] = *cell
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

// engineRows renders an in-process result identically.
func engineRows(t *testing.T, db *sqldb.Database, sql string, params ...any) []string {
	t.Helper()
	res, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("engine query %q: %v", sql, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				parts[i] = "\x00NULL"
			} else {
				parts[i] = v.AsText()
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func seedPlayers(t *testing.T, db *sqldb.Database) {
	t.Helper()
	db.MustExec(`CREATE TABLE players (id INTEGER, name TEXT, score REAL, active BOOLEAN)`)
	for i := 0; i < 25; i++ {
		name := any(fmt.Sprintf("p%02d", i))
		if i%7 == 3 {
			name = nil
		}
		db.MustExec(`INSERT INTO players VALUES (?, ?, ?, ?)`,
			i, name, float64(i%10)*1.5, i%2 == 0)
	}
}

// TestStartupHandshake covers the handshake: SSL and GSS probes declined,
// parameter statuses announced, key data issued, ready for query.
func TestStartupHandshake(t *testing.T) {
	_, _, addr := startServer(t, Options{})

	// Raw SSLRequest first, like libpq with sslmode=prefer.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	ssl := []byte{0, 0, 0, 8, 4, 210, 22, 47} // len=8, 80877103
	if _, err := nc.Write(ssl); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, 1)
	if _, err := nc.Read(resp); err != nil || resp[0] != 'N' {
		t.Fatalf("SSLRequest answer = %q, %v; want 'N'", resp[0], err)
	}
	nc.Close()

	c := dial(t, addr)
	if c.Params["server_encoding"] != "UTF8" {
		t.Errorf("server_encoding = %q", c.Params["server_encoding"])
	}
	if c.BackendPID() == 0 {
		t.Error("no BackendKeyData received")
	}
}

// TestSimpleQueryConformance runs a corpus of simple-protocol statements
// and demands results bit-identical to in-process execution of the same
// SQL on the same database.
func TestSimpleQueryConformance(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	seedPlayers(t, db)
	c := dial(t, addr)

	queries := []string{
		`SELECT id, name, score, active FROM players ORDER BY id`,
		`SELECT name FROM players WHERE score > 5 ORDER BY name DESC`,
		`SELECT count(*), sum(score), avg(score) FROM players`,
		`SELECT active, count(*) FROM players GROUP BY active ORDER BY active`,
		`SELECT DISTINCT score FROM players ORDER BY score LIMIT 5`,
		`SELECT a.id, b.id FROM players a JOIN players b ON a.id = b.id WHERE a.id < 4 ORDER BY a.id`,
		`SELECT id, CASE WHEN score > 7 THEN 'high' WHEN score > 3 THEN 'mid' ELSE 'low' END FROM players ORDER BY id`,
		`SELECT name FROM players WHERE name IS NULL`,
		`SELECT id FROM players WHERE id IN (SELECT id FROM players WHERE active) ORDER BY id`,
		`SELECT upper(name), length(name) FROM players WHERE name IS NOT NULL ORDER BY id LIMIT 7`,
	}
	for _, q := range queries {
		res := mustQuery(t, c, q)
		got := wireRows(res)
		want := engineRows(t, db, q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s:\nwire   = %q\nengine = %q", q, got, want)
		}
		wantTag := fmt.Sprintf("SELECT %d", len(want))
		if len(res.Tags) != 1 || res.Tags[0] != wantTag {
			t.Errorf("%s: tags = %v, want [%s]", q, res.Tags, wantTag)
		}
		if res.TxStatus != 'I' {
			t.Errorf("%s: tx status = %c, want I", q, res.TxStatus)
		}
	}
}

// TestSimpleQueryDML checks DML tags and effects through the wire.
func TestSimpleQueryDML(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	c := dial(t, addr)

	steps := []struct{ sql, tag string }{
		{`CREATE TABLE t (a INTEGER, b TEXT)`, "CREATE TABLE"},
		{`INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL)`, "INSERT 0 3"},
		{`CREATE INDEX idx_a ON t (a)`, "CREATE INDEX"},
		{`UPDATE t SET b = 'z' WHERE a >= 2`, "UPDATE 2"},
		{`DELETE FROM t WHERE a = 1`, "DELETE 1"},
	}
	for _, s := range steps {
		res := mustQuery(t, c, s.sql)
		if len(res.Tags) != 1 || res.Tags[0] != s.tag {
			t.Fatalf("%s: tags = %v, want [%s]", s.sql, res.Tags, s.tag)
		}
	}
	got := engineRows(t, db, `SELECT a, b FROM t ORDER BY a`)
	want := []string{"2|z", "3|z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("table state = %q, want %q", got, want)
	}
	res := mustQuery(t, c, `DROP TABLE t`)
	if res.Tags[0] != "DROP TABLE" {
		t.Fatalf("drop tag = %v", res.Tags)
	}
}

// TestMultiStatementSimpleQuery: one Query message carrying several
// statements produces one response per statement, one ReadyForQuery at
// the end, and stops at the first error.
func TestMultiStatementSimpleQuery(t *testing.T) {
	_, _, addr := startServer(t, Options{})
	c := dial(t, addr)

	res := mustQuery(t, c, `CREATE TABLE m (x INTEGER); INSERT INTO m VALUES (1); INSERT INTO m VALUES (2); SELECT x FROM m ORDER BY x`)
	wantTags := []string{"CREATE TABLE", "INSERT 0 1", "INSERT 0 1", "SELECT 2"}
	if !reflect.DeepEqual(res.Tags, wantTags) {
		t.Fatalf("tags = %v, want %v", res.Tags, wantTags)
	}

	// Error mid-batch: later statements do not run.
	res, err := c.Query(`INSERT INTO m VALUES (3); SELECT nope FROM m; INSERT INTO m VALUES (4)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Err.Code != "42703" {
		t.Fatalf("batch error = %v, want 42703", res.Err)
	}
	rows := wireRows(mustQuery(t, c, `SELECT count(*) FROM m`))
	if !reflect.DeepEqual(rows, []string{"3"}) {
		t.Fatalf("count after aborted batch = %v, want [3]", rows)
	}
}

// TestEmptyQuery: whitespace and bare semicolons answer
// EmptyQueryResponse, not an error.
func TestEmptyQuery(t *testing.T) {
	_, _, addr := startServer(t, Options{})
	c := dial(t, addr)
	for _, q := range []string{"", "   ", ";", " ;; "} {
		res, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Empty || res.Err != nil {
			t.Errorf("query %q: empty=%v err=%v, want EmptyQueryResponse", q, res.Empty, res.Err)
		}
	}
}

// TestErrorSQLStates checks that engine error classes surface as their
// pinned SQLSTATEs through the wire.
func TestErrorSQLStates(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	db.MustExec(`CREATE TABLE e (a INTEGER)`)
	c := dial(t, addr)

	cases := []struct{ sql, state string }{
		{`SELEC 1`, "42601"},
		{`SELECT * FROM missing`, "42P01"},
		{`SELECT nope FROM e`, "42703"},
		{`SELECT nofunc(a) FROM e`, "42883"},
		{`CREATE TABLE e (a INTEGER)`, "42P07"},
		{`INSERT INTO e VALUES (1, 2)`, "42000"},
	}
	for _, tc := range cases {
		res, err := c.Query(tc.sql)
		if err != nil {
			t.Fatalf("%s: transport error %v", tc.sql, err)
		}
		if res.Err == nil || res.Err.Code != tc.state {
			t.Errorf("%s: error = %v, want SQLSTATE %s", tc.sql, res.Err, tc.state)
		}
		if res.TxStatus != 'I' {
			t.Errorf("%s: tx status = %c, want I (autocommit errors leave idle)", tc.sql, res.TxStatus)
		}
	}
}

// TestExplicitTransactions drives BEGIN/COMMIT/ROLLBACK through the wire:
// status bytes, isolation from a second connection, rollback, and the
// failed-transaction discipline.
func TestExplicitTransactions(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	db.MustExec(`CREATE TABLE acct (id INTEGER, bal INTEGER)`)
	db.MustExec(`INSERT INTO acct VALUES (1, 100), (2, 50)`)
	c1 := dial(t, addr)
	c2 := dial(t, addr)

	res := mustQuery(t, c1, `BEGIN`)
	if res.Tags[0] != "BEGIN" || res.TxStatus != 'T' {
		t.Fatalf("BEGIN: tags=%v status=%c", res.Tags, res.TxStatus)
	}
	mustQuery(t, c1, `UPDATE acct SET bal = bal - 10 WHERE id = 1`)

	// Uncommitted writes are invisible to the other session.
	rows := wireRows(mustQuery(t, c2, `SELECT bal FROM acct WHERE id = 1`))
	if !reflect.DeepEqual(rows, []string{"100"}) {
		t.Fatalf("c2 sees uncommitted write: %v", rows)
	}
	// ...but visible inside the transaction.
	rows = wireRows(mustQuery(t, c1, `SELECT bal FROM acct WHERE id = 1`))
	if !reflect.DeepEqual(rows, []string{"90"}) {
		t.Fatalf("c1 does not see own write: %v", rows)
	}

	res = mustQuery(t, c1, `COMMIT`)
	if res.Tags[0] != "COMMIT" || res.TxStatus != 'I' {
		t.Fatalf("COMMIT: tags=%v status=%c", res.Tags, res.TxStatus)
	}
	rows = wireRows(mustQuery(t, c2, `SELECT bal FROM acct WHERE id = 1`))
	if !reflect.DeepEqual(rows, []string{"90"}) {
		t.Fatalf("c2 does not see committed write: %v", rows)
	}

	// Rollback undoes.
	mustQuery(t, c1, `BEGIN`)
	mustQuery(t, c1, `DELETE FROM acct`)
	res = mustQuery(t, c1, `ROLLBACK`)
	if res.Tags[0] != "ROLLBACK" || res.TxStatus != 'I' {
		t.Fatalf("ROLLBACK: tags=%v status=%c", res.Tags, res.TxStatus)
	}
	rows = wireRows(mustQuery(t, c1, `SELECT count(*) FROM acct`))
	if !reflect.DeepEqual(rows, []string{"2"}) {
		t.Fatalf("rollback did not undo: %v", rows)
	}
}

// TestFailedTransactionDiscipline: an error inside an explicit
// transaction moves it to 'E'; everything but COMMIT/ROLLBACK is refused
// with 25P02; COMMIT rolls back and reports ROLLBACK.
func TestFailedTransactionDiscipline(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	db.MustExec(`CREATE TABLE ft (a INTEGER)`)
	c := dial(t, addr)

	mustQuery(t, c, `BEGIN`)
	mustQuery(t, c, `INSERT INTO ft VALUES (1)`)
	res, _ := c.Query(`SELECT nope FROM ft`)
	if res.Err == nil || res.TxStatus != 'E' {
		t.Fatalf("error in txn: err=%v status=%c, want status E", res.Err, res.TxStatus)
	}
	res, _ = c.Query(`INSERT INTO ft VALUES (2)`)
	if res.Err == nil || res.Err.Code != "25P02" {
		t.Fatalf("statement in failed txn: %v, want 25P02", res.Err)
	}
	res = mustQuery(t, c, `COMMIT`)
	if res.Tags[0] != "ROLLBACK" || res.TxStatus != 'I' {
		t.Fatalf("COMMIT of failed txn: tags=%v status=%c, want ROLLBACK/I", res.Tags, res.TxStatus)
	}
	rows := wireRows(mustQuery(t, c, `SELECT count(*) FROM ft`))
	if !reflect.DeepEqual(rows, []string{"0"}) {
		t.Fatalf("failed txn committed rows: %v", rows)
	}

	// BEGIN inside a transaction and COMMIT/ROLLBACK outside are errors.
	mustQuery(t, c, `BEGIN`)
	res, _ = c.Query(`BEGIN`)
	if res.Err == nil || res.Err.Code != "25001" {
		t.Fatalf("nested BEGIN: %v, want 25001", res.Err)
	}
	mustQuery(t, c, `ROLLBACK`) // the nested-BEGIN error failed the txn; clear it
	res, _ = c.Query(`COMMIT`)
	if res.Err == nil || res.Err.Code != "25P01" {
		t.Fatalf("COMMIT outside txn: %v, want 25P01", res.Err)
	}
}

// TestExtendedProtocol drives Parse/Bind/Describe/Execute/Sync with
// named statements, parameters, NULLs, and portal suspension.
func TestExtendedProtocol(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	seedPlayers(t, db)
	c := dial(t, addr)

	// Unnamed round trip with typed parameters, results bit-identical to
	// the engine binding the same values.
	res, err := c.ExtQuery(`SELECT id, name FROM players WHERE id < ? AND score >= ? ORDER BY id`,
		pgwiretest.Str("10"), pgwiretest.Str("1.5"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := engineRows(t, db, `SELECT id, name FROM players WHERE id < ? AND score >= ? ORDER BY id`, "10", "1.5")
	if got := wireRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("extended result:\nwire   = %q\nengine = %q", got, want)
	}
	if !reflect.DeepEqual(res.Cols, []string{"id", "name"}) {
		t.Fatalf("described cols = %v", res.Cols)
	}

	// Named statement with declared OIDs: int params decode to integers.
	if err := c.SendParse("byid", `SELECT score FROM players WHERE id = ?`, []int32{23}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendDescribe('S', "byid"); err != nil {
		t.Fatal(err)
	}
	if err := c.SendSync(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Collect()
	if err != nil || res.Err != nil {
		t.Fatalf("parse/describe: %v / %v", err, res.Err)
	}
	if !reflect.DeepEqual(res.ParamOIDs, []int32{23}) {
		t.Fatalf("param OIDs = %v, want [23]", res.ParamOIDs)
	}
	if !reflect.DeepEqual(res.Cols, []string{"score"}) {
		t.Fatalf("statement describe cols = %v", res.Cols)
	}

	// Execute the named statement twice with different parameters. The
	// declared int4 OID makes the server bind an integer, so the engine
	// comparison binds an integer too.
	for _, id := range []int{4, 9} {
		c.SendBind("", "byid", []*string{pgwiretest.Str(fmt.Sprint(id))})
		c.SendExecute("", 0)
		c.SendSync()
		res, err = c.Collect()
		if err != nil || res.Err != nil {
			t.Fatalf("execute byid(%d): %v / %v", id, err, res.Err)
		}
		want := engineRows(t, db, `SELECT score FROM players WHERE id = ?`, id)
		if got := wireRows(res); !reflect.DeepEqual(got, want) {
			t.Fatalf("byid(%d): wire %q engine %q", id, got, want)
		}
	}

	// NULL parameter binds NULL.
	res, err = c.ExtQuery(`SELECT count(*) FROM players WHERE name = ?`, nil)
	if err != nil || res.Err != nil {
		t.Fatalf("null param: %v / %v", err, res.Err)
	}
	if got := wireRows(res); !reflect.DeepEqual(got, []string{"0"}) {
		t.Fatalf("name = NULL matched rows: %v", got)
	}

	// Portal suspension: Execute with a row limit, resume, then finish.
	c.SendParse("", `SELECT id FROM players ORDER BY id`, nil)
	c.SendBind("cur", "", nil)
	c.SendExecute("cur", 10)
	c.SendFlush()
	// Collect won't see ReadyForQuery yet; read message-level instead.
	var seen []byte
	rows := 0
	for {
		m, err := c.ReadMsg()
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, m.Type)
		if m.Type == 'D' {
			rows++
		}
		if m.Type == 's' {
			break
		}
		if m.Type == 'E' {
			t.Fatalf("suspend leg error; seq %q", seen)
		}
	}
	if rows != 10 {
		t.Fatalf("suspended after %d rows, want 10", rows)
	}
	c.SendExecute("cur", 0)
	c.SendSync()
	res, err = c.Collect()
	if err != nil || res.Err != nil {
		t.Fatalf("resume: %v / %v", err, res.Err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("resume streamed %d rows, want 15", len(res.Rows))
	}
	if len(res.Tags) != 1 || res.Tags[0] != "SELECT 25" {
		t.Fatalf("final tag = %v, want [SELECT 25]", res.Tags)
	}

	// DML through the extended protocol, with declared parameter types
	// (float8, int4) so the engine compares id as an integer.
	c.SendParse("", `UPDATE players SET score = ? WHERE id = ?`, []int32{701, 23})
	c.SendBind("", "", []*string{pgwiretest.Str("99.5"), pgwiretest.Str("3")})
	c.SendDescribe('P', "")
	c.SendExecute("", 0)
	c.SendSync()
	res, err = c.Collect()
	if err != nil || res.Err != nil {
		t.Fatalf("extended update: %v / %v", err, res.Err)
	}
	if len(res.Tags) != 1 || res.Tags[0] != "UPDATE 1" {
		t.Fatalf("update tag = %v", res.Tags)
	}
	if !res.NoData {
		t.Fatalf("describe of UPDATE did not report NoData (seq %q)", res.Seq)
	}
}

// TestExtendedProtocolErrors covers the extended-specific error states
// and the skip-to-Sync discipline.
func TestExtendedProtocolErrors(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	db.MustExec(`CREATE TABLE ee (a INTEGER)`)
	c := dial(t, addr)

	// Bind to a missing statement → 26000; following messages are
	// discarded until Sync.
	c.SendBind("", "ghost", nil)
	c.SendExecute("", 0)
	c.SendSync()
	res, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Err.Code != "26000" {
		t.Fatalf("bind missing stmt: %v, want 26000", res.Err)
	}
	// The Execute after the error must have been skipped: no tags.
	if len(res.Tags) != 0 {
		t.Fatalf("skipped Execute still produced tags %v", res.Tags)
	}

	// Execute a missing portal → 34000.
	c.SendExecute("ghost", 0)
	c.SendSync()
	res, _ = c.Collect()
	if res.Err == nil || res.Err.Code != "34000" {
		t.Fatalf("execute missing portal: %v, want 34000", res.Err)
	}

	// Parameter count mismatch → 08P01.
	c.SendParse("", `SELECT a FROM ee WHERE a = ?`, nil)
	c.SendBind("", "", nil)
	c.SendSync()
	res, _ = c.Collect()
	if res.Err == nil || res.Err.Code != "08P01" {
		t.Fatalf("param count mismatch: %v, want 08P01", res.Err)
	}

	// Undecodable int parameter → 22P02.
	c.SendParse("", `SELECT a FROM ee WHERE a = ?`, []int32{23})
	c.SendBind("", "", []*string{pgwiretest.Str("notanint")})
	c.SendSync()
	res, _ = c.Collect()
	if res.Err == nil || res.Err.Code != "22P02" {
		t.Fatalf("bad int literal: %v, want 22P02", res.Err)
	}

	// Duplicate named statement → 42P05; duplicate named portal → 42P03.
	c.SendParse("dup", `SELECT a FROM ee`, nil)
	c.SendParse("dup", `SELECT a FROM ee`, nil)
	c.SendSync()
	res, _ = c.Collect()
	if res.Err == nil || res.Err.Code != "42P05" {
		t.Fatalf("duplicate prepared: %v, want 42P05", res.Err)
	}
	c.SendBind("p1", "dup", nil)
	c.SendBind("p1", "dup", nil)
	c.SendSync()
	res, _ = c.Collect()
	if res.Err == nil || res.Err.Code != "42P03" {
		t.Fatalf("duplicate portal: %v, want 42P03", res.Err)
	}

	// Multiple commands in one Parse → 42601.
	c.SendParse("", `SELECT a FROM ee; SELECT a FROM ee`, nil)
	c.SendSync()
	res, _ = c.Collect()
	if res.Err == nil || res.Err.Code != "42601" {
		t.Fatalf("multi-command parse: %v, want 42601", res.Err)
	}

	// Binary result format → 0A000.
	var b []byte
	b = appendC(b, "")
	b = appendC(b, "")
	b = append(b, 0, 1, 0, 1) // one param format code: 1 (binary)
	b = append(b, 0, 0)       // zero params
	b = append(b, 0, 0)       // zero result formats
	c.SendParse("", `SELECT a FROM ee`, nil)
	if err := c.RawWrite(frameMsg('B', b)); err != nil {
		t.Fatal(err)
	}
	c.SendSync()
	res, _ = c.Collect()
	if res.Err == nil || res.Err.Code != "0A000" {
		t.Fatalf("binary format: %v, want 0A000", res.Err)
	}

	// Close of a missing prepared statement is not an error.
	c.SendClose('S', "nothere")
	c.SendSync()
	res, _ = c.Collect()
	if res.Err != nil {
		t.Fatalf("close missing stmt errored: %v", res.Err)
	}
}

// appendC and frameMsg build raw frames for malformed-input legs.
func appendC(b []byte, s string) []byte { return append(append(b, s...), 0) }

func frameMsg(typ byte, body []byte) []byte {
	out := []byte{typ, 0, 0, 0, 0}
	out = append(out, body...)
	binary.BigEndian.PutUint32(out[1:], uint32(len(body)+4))
	return out
}

// TestMidQueryCancellation: a suspended portal's cursor is cancelled by a
// CancelRequest from a second connection; the next Execute reports 57014.
func TestMidQueryCancellation(t *testing.T) {
	_, db, addr := startServer(t, Options{})
	db.MustExec(`CREATE TABLE big (n INTEGER)`)
	tx := db.Begin()
	for i := 0; i < 2000; i++ {
		tx.Exec(`INSERT INTO big VALUES (?)`, i)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)

	// Open a portal, pull one row, leave it suspended.
	c.SendParse("", `SELECT n FROM big ORDER BY n`, nil)
	c.SendBind("", "", nil)
	c.SendExecute("", 1)
	c.SendFlush()
	for {
		m, err := c.ReadMsg()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == 's' {
			break
		}
		if m.Type == 'E' {
			t.Fatal("error before suspension")
		}
	}

	// Cancel from a second connection using the first's key data.
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	// The cancel is asynchronous; poll the resumed Execute until it
	// reports the cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.SendExecute("", 1)
		c.SendSync()
		res, err := c.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			if res.Err.Code != "57014" {
				t.Fatalf("cancelled execute: %v, want 57014", res.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never took effect")
		}
		// The portal was destroyed by Sync; re-open it suspended.
		c.SendParse("", `SELECT n FROM big ORDER BY n`, nil)
		c.SendBind("", "", nil)
		c.SendExecute("", 1)
		c.SendFlush()
		for {
			m, err := c.ReadMsg()
			if err != nil {
				t.Fatal(err)
			}
			if m.Type == 's' || m.Type == 'E' {
				break
			}
		}
		if err := c.Cancel(); err != nil {
			t.Fatal(err)
		}
	}

	// The session survives cancellation: a fresh query works.
	rows := wireRows(mustQuery(t, c, `SELECT count(*) FROM big`))
	if !reflect.DeepEqual(rows, []string{"2000"}) {
		t.Fatalf("post-cancel query: %v", rows)
	}

	// A cancel with the wrong secret is ignored.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var pkt []byte
	pkt = append(pkt, 0, 0, 0, 16)
	pkt = append(pkt, 4, 210, 22, 46) // 80877102
	pkt = append(pkt, 0, 0, 0, byte(c.BackendPID()))
	pkt = append(pkt, 1, 2, 3, 4) // wrong secret
	nc.Write(pkt)
	nc.Close()
	rows = wireRows(mustQuery(t, c, `SELECT count(*) FROM big`))
	if !reflect.DeepEqual(rows, []string{"2000"}) {
		t.Fatalf("wrong-secret cancel affected session: %v", rows)
	}
}

// TestConnectionLimit: connections beyond MaxConns are refused with
// 53300 after a complete handshake, and a released slot is reusable.
func TestConnectionLimit(t *testing.T) {
	_, _, addr := startServer(t, Options{MaxConns: 2})

	c1 := dial(t, addr)
	c2 := dial(t, addr)
	mustQuery(t, c1, `SELECT 1`)
	mustQuery(t, c2, `SELECT 1`)

	_, err := pgwiretest.Dial(addr)
	if err == nil {
		t.Fatal("third connection admitted past MaxConns=2")
	}
	se, ok := err.(*pgwiretest.ServerError)
	if !ok || se.Code != "53300" {
		t.Fatalf("refusal error = %v, want SQLSTATE 53300", err)
	}

	// Releasing a slot admits a new connection.
	c1.Terminate()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := pgwiretest.Dial(addr)
		if err == nil {
			mustQuery(t, c3, `SELECT 1`)
			c3.Terminate()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c2.Terminate()
}

// TestPasswordAuth: wrong password refused with 28P01, right one admitted.
func TestPasswordAuth(t *testing.T) {
	_, _, addr := startServer(t, Options{Password: "sesame"})

	_, err := pgwiretest.DialConfig(addr, pgwiretest.Config{User: "u", Password: "wrong"})
	se, ok := err.(*pgwiretest.ServerError)
	if !ok || se.Code != "28P01" {
		t.Fatalf("wrong password: %v, want 28P01", err)
	}

	c, err := pgwiretest.DialConfig(addr, pgwiretest.Config{User: "u", Password: "sesame"})
	if err != nil {
		t.Fatalf("right password refused: %v", err)
	}
	mustQuery(t, c, `SELECT 1`)
	c.Terminate()
}

// TestGracefulShutdown: Shutdown drains idle sessions with 57P01 and
// Serve returns nil.
func TestGracefulShutdown(t *testing.T) {
	db := sqldb.NewDatabase()
	defer db.Close()
	srv := NewServer(db, Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	c, err := pgwiretest.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustQuery(t, c, `SELECT 1`)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	// The drained client got the admin-shutdown goodbye.
	m, err := c.ReadMsg()
	if err == nil && m.Type == 'E' {
		// decoded FATAL 57P01 — fine
	} else if err == nil {
		t.Fatalf("expected ErrorResponse or EOF, got %q", m.Type)
	}
	// New connections are refused.
	if _, err := pgwiretest.Dial(lis.Addr().String()); err == nil {
		t.Fatal("connection admitted after shutdown")
	}
	if n := db.LiveSnapshots(); n != 0 {
		t.Fatalf("leaked %d snapshots", n)
	}
}
