package pgwire

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"tag/internal/sqldb"
)

// session is one connection's protocol state machine. It owns the
// connection's transaction handle, prepared statements, and portals, and
// is driven single-threaded by run — the only cross-goroutine surface is
// the cancel set (hit by CancelRequest connections and by shutdown).
type session struct {
	srv *Server
	be  *backend
	db  *sqldb.Database

	pid    int32
	secret int32

	// tx is the explicit transaction opened by BEGIN, nil when idle.
	// txFailed marks the Postgres aborted-transaction discipline: after
	// any error inside an explicit transaction, every statement except
	// COMMIT/ROLLBACK is rejected with 25P02, and COMMIT rolls back.
	tx       *sqldb.Txn
	txFailed bool

	prepared map[string]*preparedStmt
	portals  map[string]*portal

	// skipToSync discards messages after an extended-protocol error until
	// the next Sync, per protocol.
	skipToSync bool

	// cancelMu guards the registry of in-flight statement contexts. A
	// CancelRequest (or forced shutdown) cancels all of them: the current
	// statement and any suspended portals' cursors.
	cancelMu   sync.Mutex
	cancels    map[int]context.CancelFunc
	nextCancel int
}

// preparedStmt is a named parse result. stmt is nil for the empty query
// (Execute answers EmptyQueryResponse).
type preparedStmt struct {
	sql       string
	stmt      sqldb.Statement
	numParams int
	paramOIDs []int32 // as declared by Parse; missing entries bind as text
}

// portal is a bound statement. For a SELECT the cursor opens lazily at
// the first Execute and stays open (holding its snapshot reference, with
// its context still cancel-registered) across PortalSuspended until the
// portal completes, is closed, or Sync destroys it.
type portal struct {
	ps     *preparedStmt
	params []any
	rows   *sqldb.Rows
	unreg  func() // releases the cursor's cancel registration
	total  int    // rows streamed so far, for the final SELECT tag
}

// closeCursor releases the portal's cursor and cancel registration, if
// any. Idempotent.
func (p *portal) closeCursor() {
	if p.rows != nil {
		p.rows.Close()
		p.rows = nil
	}
	if p.unreg != nil {
		p.unreg()
		p.unreg = nil
	}
}

func newSession(srv *Server, be *backend, pid, secret int32) *session {
	return &session{
		srv:      srv,
		be:       be,
		db:       srv.db,
		pid:      pid,
		secret:   secret,
		prepared: make(map[string]*preparedStmt),
		portals:  make(map[string]*portal),
		cancels:  make(map[int]context.CancelFunc),
	}
}

// trackCtx derives a cancellable statement context registered in the
// session's cancel set. The returned release is idempotent and must be
// called on every exit path; until then a CancelRequest reaches this
// context.
func (s *session) trackCtx() (context.Context, func()) {
	ctx, cancel := context.WithCancel(s.srv.baseCtx)
	s.cancelMu.Lock()
	id := s.nextCancel
	s.nextCancel++
	s.cancels[id] = cancel
	s.cancelMu.Unlock()
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			s.cancelMu.Lock()
			delete(s.cancels, id)
			s.cancelMu.Unlock()
			cancel()
		})
	}
}

// cancelAll fires every registered statement context. Safe from any
// goroutine; the owners unregister on their own exit paths.
func (s *session) cancelAll() {
	s.cancelMu.Lock()
	defer s.cancelMu.Unlock()
	for _, cancel := range s.cancels {
		cancel()
	}
}

// teardown releases everything the session holds, no matter how the
// connection died: open portals (cursors → snapshots), the explicit
// transaction (rolled back), and the cancel registry. The disconnect
// matrix kills connections at every protocol state and asserts the
// engine's snapshot/cursor/worker counters all return to zero — this is
// the code under test.
func (s *session) teardown() {
	s.cancelAll()
	for name, p := range s.portals {
		p.closeCursor()
		delete(s.portals, name)
	}
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
	}
}

// txStatus is the ReadyForQuery status byte.
func (s *session) txStatus() byte {
	switch {
	case s.tx == nil:
		return 'I'
	case s.txFailed:
		return 'E'
	default:
		return 'T'
	}
}

// run drives the post-handshake message loop. It returns when the client
// terminates or disconnects, on a fatal protocol error (reported first),
// or when the server drains.
func (s *session) run() {
	for {
		if s.srv.draining() {
			s.be.errorResponse("FATAL", stateAdminShutdown, "terminating connection due to administrator command")
			s.be.flush()
			return
		}
		typ, payload, err := readMessage(s.be.conn)
		if err != nil {
			if s.srv.draining() {
				s.be.errorResponse("FATAL", stateAdminShutdown, "terminating connection due to administrator command")
				s.be.flush()
				return
			}
			if pe, ok := err.(*protocolError); ok {
				s.be.errorResponse("FATAL", pe.sqlState, pe.msg)
				s.be.flush()
			}
			return // disconnect or unreadable stream
		}
		if s.skipToSync && typ != msgSync && typ != msgTerminate {
			continue
		}
		var fatal error
		switch typ {
		case msgQuery:
			fatal = s.handleQuery(payload)
		case msgParse:
			fatal = s.handleParse(payload)
		case msgBind:
			fatal = s.handleBind(payload)
		case msgDescribe:
			fatal = s.handleDescribe(payload)
		case msgExecute:
			fatal = s.handleExecute(payload)
		case msgClose:
			fatal = s.handleClose(payload)
		case msgFlush:
			fatal = s.be.flush()
		case msgSync:
			fatal = s.handleSync()
		case msgTerminate:
			return
		default:
			s.be.errorResponse("FATAL", stateProtocolViolation,
				fmt.Sprintf("unknown message type %q", typ))
			s.be.flush()
			return
		}
		if fatal != nil {
			if pe, ok := fatal.(*protocolError); ok {
				s.be.errorResponse("FATAL", pe.sqlState, pe.msg)
				s.be.flush()
			}
			return
		}
	}
}

// reportError sends an ErrorResponse and applies the aborted-transaction
// discipline: any error inside an explicit transaction moves it to the
// failed state.
func (s *session) reportError(err error) error {
	we := toWireError(err)
	if s.tx != nil {
		s.txFailed = true
	}
	return s.be.errorResponse(we.severity, we.sqlState, we.msg)
}

// extErr reports an extended-protocol error and discards messages until
// Sync.
func (s *session) extErr(err error) error {
	s.skipToSync = true
	return s.reportError(err)
}

// emptyQuery reports whether sql contains no statements (whitespace and
// bare semicolons only) — the protocol answers EmptyQueryResponse instead
// of a parse error.
func emptyQuery(sql string) bool {
	return strings.TrimLeft(sql, " \t\r\n;") == ""
}

// ---------------------------------------------------------------------------
// Simple query

func (s *session) handleQuery(payload []byte) error {
	r := msgReader{buf: payload}
	sql := r.cstring()
	if r.err != nil {
		return r.err
	}
	if emptyQuery(sql) {
		if err := s.be.emptyQueryResponse(); err != nil {
			return err
		}
		return s.be.readyForQuery(s.txStatus())
	}
	stmts, err := sqldb.ParseAll(sql)
	if err != nil {
		if err := s.reportError(err); err != nil {
			return err
		}
		return s.be.readyForQuery(s.txStatus())
	}
	for _, stmt := range stmts {
		if err := s.execSimple(stmt); err != nil {
			if _, ok := err.(*execError); !ok {
				return err // connection-level failure
			}
			break // statement error already reported; stop the batch
		}
	}
	return s.be.readyForQuery(s.txStatus())
}

// execError wraps a statement-level failure that has already been
// reported to the client — the simple-query loop stops the batch, the
// connection survives.
type execError struct{ err error }

func (e *execError) Error() string { return e.err.Error() }

// execSimple runs one statement of a simple query, streaming its full
// result.
func (s *session) execSimple(stmt sqldb.Statement) error {
	if s.txFailed && !isTxnEnd(stmt) {
		if err := s.reportError(wireErrf(stateFailedTransaction,
			"current transaction is aborted, commands ignored until end of transaction block")); err != nil {
			return err
		}
		return &execError{err: errFailedTxn}
	}
	sel, isSel := stmt.(*sqldb.SelectStmt)
	if !isSel {
		tag, err := s.execNonSelect(stmt, nil)
		if err != nil {
			if err := s.reportError(err); err != nil {
				return err
			}
			return &execError{err: err}
		}
		return s.be.commandComplete(tag)
	}
	ctx, release := s.trackCtx()
	defer release()
	rows, err := s.db.QueryRowsStmt(ctx, sel, s.tx)
	if err != nil {
		if err := s.reportError(err); err != nil {
			return err
		}
		return &execError{err: err}
	}
	defer rows.Close()
	if err := s.be.rowDescription(rows.Columns()); err != nil {
		return err
	}
	n := 0
	for rows.Next() {
		if err := s.be.dataRow(rows.Row()); err != nil {
			return err
		}
		n++
	}
	if err := rows.Err(); err != nil {
		if err := s.reportError(err); err != nil {
			return err
		}
		return &execError{err: err}
	}
	return s.be.commandComplete("SELECT " + strconv.Itoa(n))
}

var errFailedTxn = wireErrf(stateFailedTransaction, "transaction is aborted")

func isTxnEnd(stmt sqldb.Statement) bool {
	switch stmt.(type) {
	case *sqldb.CommitStmt, *sqldb.RollbackStmt:
		return true
	}
	return false
}

// execNonSelect executes any non-SELECT statement and returns its command
// tag. BEGIN/COMMIT/ROLLBACK are intercepted here and mapped onto the
// session's explicit Txn handle — they never reach the engine's shared
// SQL-level session transaction.
func (s *session) execNonSelect(stmt sqldb.Statement, params []any) (string, error) {
	switch stmt.(type) {
	case *sqldb.BeginStmt:
		if s.tx != nil {
			return "", wireErrf("25001", "there is already a transaction in progress")
		}
		s.tx = s.db.Begin()
		s.txFailed = false
		return "BEGIN", nil
	case *sqldb.CommitStmt:
		if s.tx == nil {
			return "", wireErrf(stateNoActiveTransaction, "there is no transaction in progress")
		}
		tx := s.tx
		s.tx = nil
		if s.txFailed {
			// COMMIT of a failed transaction rolls back, per Postgres.
			s.txFailed = false
			tx.Rollback()
			return "ROLLBACK", nil
		}
		if err := tx.Commit(); err != nil {
			return "", err
		}
		return "COMMIT", nil
	case *sqldb.RollbackStmt:
		if s.tx == nil {
			return "", wireErrf(stateNoActiveTransaction, "there is no transaction in progress")
		}
		tx := s.tx
		s.tx = nil
		s.txFailed = false
		tx.Rollback()
		return "ROLLBACK", nil
	}
	ctx, release := s.trackCtx()
	defer release()
	n, err := s.db.ExecStmtTx(ctx, stmt, s.tx, params...)
	if err != nil {
		return "", err
	}
	return cmdTag(stmt, n), nil
}

func cmdTag(stmt sqldb.Statement, n int) string {
	switch stmt.(type) {
	case *sqldb.InsertStmt:
		return "INSERT 0 " + strconv.Itoa(n)
	case *sqldb.UpdateStmt:
		return "UPDATE " + strconv.Itoa(n)
	case *sqldb.DeleteStmt:
		return "DELETE " + strconv.Itoa(n)
	case *sqldb.CreateTableStmt:
		return "CREATE TABLE"
	case *sqldb.CreateIndexStmt:
		return "CREATE INDEX"
	case *sqldb.DropTableStmt:
		return "DROP TABLE"
	default:
		return "OK"
	}
}

// ---------------------------------------------------------------------------
// Extended protocol

func (s *session) handleParse(payload []byte) error {
	r := msgReader{buf: payload}
	name := r.cstring()
	query := r.cstring()
	nOIDs := r.int16()
	oids := make([]int32, 0, nOIDs)
	for i := 0; i < nOIDs; i++ {
		oids = append(oids, r.int32())
	}
	if r.err != nil {
		return r.err
	}
	if name != "" {
		if _, dup := s.prepared[name]; dup {
			return s.extErr(wireErrf(stateDuplicatePrepared,
				fmt.Sprintf("prepared statement %q already exists", name)))
		}
	}
	ps := &preparedStmt{sql: query, paramOIDs: oids}
	if !emptyQuery(query) {
		stmts, err := sqldb.ParseAll(query)
		if err != nil {
			return s.extErr(err)
		}
		if len(stmts) > 1 {
			return s.extErr(wireErrf("42601",
				"cannot insert multiple commands into a prepared statement"))
		}
		ps.stmt = stmts[0]
		ps.numParams = sqldb.NumParams(stmts[0])
	}
	s.prepared[name] = ps
	return s.be.parseComplete()
}

func (s *session) handleBind(payload []byte) error {
	r := msgReader{buf: payload}
	portalName := r.cstring()
	stmtName := r.cstring()
	nFmt := r.int16()
	fmts := make([]int, 0, nFmt)
	for i := 0; i < nFmt; i++ {
		fmts = append(fmts, r.int16())
	}
	nParams := r.int16()
	raw := make([][]byte, 0, nParams) // nil element = NULL
	for i := 0; i < nParams; i++ {
		l := r.int32()
		if l == -1 {
			raw = append(raw, nil)
			continue
		}
		b := r.bytes(int(l))
		if b == nil {
			b = []byte{}
		}
		raw = append(raw, b)
	}
	nResFmt := r.int16()
	resFmts := make([]int, 0, nResFmt)
	for i := 0; i < nResFmt; i++ {
		resFmts = append(resFmts, r.int16())
	}
	if r.err != nil {
		return r.err
	}
	for _, f := range fmts {
		if f != 0 {
			return s.extErr(wireErrf(stateFeatureNotSupported,
				"binary parameter format is not supported"))
		}
	}
	for _, f := range resFmts {
		if f != 0 {
			return s.extErr(wireErrf(stateFeatureNotSupported,
				"binary result format is not supported"))
		}
	}
	ps, ok := s.prepared[stmtName]
	if !ok {
		return s.extErr(wireErrf(stateUndefinedPrepared,
			fmt.Sprintf("prepared statement %q does not exist", stmtName)))
	}
	if len(raw) != ps.numParams {
		return s.extErr(wireErrf(stateProtocolViolation, fmt.Sprintf(
			"bind message supplies %d parameters, but prepared statement %q requires %d",
			len(raw), stmtName, ps.numParams)))
	}
	params := make([]any, len(raw))
	for i, b := range raw {
		v, err := decodeParam(b, paramOID(ps.paramOIDs, i))
		if err != nil {
			return s.extErr(err)
		}
		params[i] = v
	}
	if old, dup := s.portals[portalName]; dup {
		if portalName != "" {
			return s.extErr(wireErrf(stateDuplicateCursor,
				fmt.Sprintf("portal %q already exists", portalName)))
		}
		old.closeCursor() // rebinding the unnamed portal replaces it
	}
	s.portals[portalName] = &portal{ps: ps, params: params}
	return s.be.bindComplete()
}

func paramOID(oids []int32, i int) int32 {
	if i < len(oids) {
		return oids[i]
	}
	return 0
}

// decodeParam turns one text-format parameter into the Go value the
// engine binds. NULL (nil) passes through; the declared OID picks the
// target type, anything undeclared or unrecognised binds as text.
func decodeParam(b []byte, oid int32) (any, error) {
	if b == nil {
		return nil, nil
	}
	s := string(b)
	switch oid {
	case int8OID, int2OID, int4OID:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, wireErrf(stateInvalidText,
				fmt.Sprintf("invalid input syntax for integer: %q", s))
		}
		return n, nil
	case float4OID, float8OID:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, wireErrf(stateInvalidText,
				fmt.Sprintf("invalid input syntax for double precision: %q", s))
		}
		return f, nil
	case numericOID:
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, wireErrf(stateInvalidText,
				fmt.Sprintf("invalid input syntax for numeric: %q", s))
		}
		return f, nil
	case boolOID:
		switch strings.ToLower(s) {
		case "t", "true", "on", "1", "yes":
			return true, nil
		case "f", "false", "off", "0", "no":
			return false, nil
		}
		return nil, wireErrf(stateInvalidText,
			fmt.Sprintf("invalid input syntax for boolean: %q", s))
	default:
		return s, nil
	}
}

func (s *session) handleDescribe(payload []byte) error {
	r := msgReader{buf: payload}
	kind := r.int8()
	name := r.cstring()
	if r.err != nil {
		return r.err
	}
	switch kind {
	case 'S':
		ps, ok := s.prepared[name]
		if !ok {
			return s.extErr(wireErrf(stateUndefinedPrepared,
				fmt.Sprintf("prepared statement %q does not exist", name)))
		}
		oids := make([]int32, ps.numParams)
		copy(oids, ps.paramOIDs)
		if err := s.be.parameterDescription(oids); err != nil {
			return err
		}
		return s.describeResult(ps, nil)
	case 'P':
		p, ok := s.portals[name]
		if !ok {
			return s.extErr(wireErrf(stateUndefinedCursor,
				fmt.Sprintf("portal %q does not exist", name)))
		}
		if p.rows != nil {
			return s.be.rowDescription(p.rows.Columns())
		}
		return s.describeResult(p.ps, p.params)
	default:
		return protoErrf("invalid Describe kind %q", kind)
	}
}

// describeResult reports the result shape of a statement that has not
// executed yet. For a SELECT the shape comes from a probe plan: the
// statement is planned against NULL placeholders (params, when the caller
// is a bound portal, else all-NULL) and the cursor closed before reading
// a row — plans are cheap, and this keeps column naming in one place
// (the planner) instead of duplicating it here.
func (s *session) describeResult(ps *preparedStmt, params []any) error {
	sel, isSel := ps.stmt.(*sqldb.SelectStmt)
	if !isSel {
		return s.be.noData()
	}
	if params == nil {
		params = make([]any, ps.numParams)
	}
	ctx, release := s.trackCtx()
	defer release()
	rows, err := s.db.QueryRowsStmt(ctx, sel, s.tx, params...)
	if err != nil {
		return s.extErr(err)
	}
	cols := rows.Columns()
	rows.Close()
	return s.be.rowDescription(cols)
}

func (s *session) handleExecute(payload []byte) error {
	r := msgReader{buf: payload}
	name := r.cstring()
	maxRows := int(r.int32())
	if r.err != nil {
		return r.err
	}
	p, ok := s.portals[name]
	if !ok {
		return s.extErr(wireErrf(stateUndefinedCursor,
			fmt.Sprintf("portal %q does not exist", name)))
	}
	if p.ps.stmt == nil {
		return s.be.emptyQueryResponse()
	}
	if s.txFailed && !isTxnEnd(p.ps.stmt) {
		return s.extErr(wireErrf(stateFailedTransaction,
			"current transaction is aborted, commands ignored until end of transaction block"))
	}
	sel, isSel := p.ps.stmt.(*sqldb.SelectStmt)
	if !isSel {
		tag, err := s.execNonSelect(p.ps.stmt, p.params)
		if err != nil {
			return s.extErr(err)
		}
		return s.be.commandComplete(tag)
	}
	if p.rows == nil {
		ctx, release := s.trackCtx()
		rows, err := s.db.QueryRowsStmt(ctx, sel, s.tx, p.params...)
		if err != nil {
			release()
			return s.extErr(err)
		}
		p.rows, p.unreg = rows, release
	}
	sent := 0
	for maxRows <= 0 || sent < maxRows {
		if !p.rows.Next() {
			break
		}
		if err := s.be.dataRow(p.rows.Row()); err != nil {
			p.closeCursor()
			return err
		}
		sent++
		p.total++
	}
	if err := p.rows.Err(); err != nil {
		p.closeCursor()
		return s.extErr(err)
	}
	if maxRows > 0 && sent == maxRows {
		// The row limit stopped us; the portal stays open (its cursor
		// still holds the snapshot and remains cancellable) until the
		// next Execute, an explicit Close, or Sync.
		return s.be.portalSuspended()
	}
	total := p.total
	p.closeCursor()
	return s.be.commandComplete("SELECT " + strconv.Itoa(total))
}

func (s *session) handleClose(payload []byte) error {
	r := msgReader{buf: payload}
	kind := r.int8()
	name := r.cstring()
	if r.err != nil {
		return r.err
	}
	switch kind {
	case 'S':
		delete(s.prepared, name) // closing a missing statement is not an error
	case 'P':
		if p, ok := s.portals[name]; ok {
			p.closeCursor()
			delete(s.portals, name)
		}
	default:
		return protoErrf("invalid Close kind %q", kind)
	}
	return s.be.closeComplete()
}

// handleSync ends an extended-protocol cycle: every portal is destroyed
// (cursors closed, snapshots released — this server's documented
// tightening of Postgres's portal lifetime), the error-skip state clears,
// and ReadyForQuery reports the transaction status.
func (s *session) handleSync() error {
	for name, p := range s.portals {
		p.closeCursor()
		delete(s.portals, name)
	}
	s.skipToSync = false
	return s.be.readyForQuery(s.txStatus())
}
