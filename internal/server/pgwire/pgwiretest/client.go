// Package pgwiretest is a minimal PostgreSQL v3 frontend used by the wire
// test layer: just enough client to drive the conformance, metamorphic,
// fault, race, and benchmark suites against the pgwire server without
// adding a module dependency. It speaks the same protocol subset the
// server implements — startup with optional cleartext password, simple
// Query, the extended Parse/Bind/Describe/Execute/Close/Flush/Sync flow,
// CancelRequest, and Terminate — and exposes both a message-level API
// (Send*/ReadMsg) for sequence assertions and collected Results for
// everything else.
package pgwiretest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Config carries startup options.
type Config struct {
	User     string
	Database string
	Password string // sent if the server demands cleartext auth
}

// Conn is one client connection.
type Conn struct {
	c      net.Conn
	br     *bufio.Reader
	pid    int32
	secret int32
	// Params holds the ParameterStatus values announced at startup.
	Params map[string]string
	addr   string
}

// ServerError is an ErrorResponse decoded into its S/C/M fields.
type ServerError struct {
	Severity string
	Code     string // SQLSTATE
	Message  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("%s %s: %s", e.Severity, e.Code, e.Message)
}

// Msg is one raw backend message.
type Msg struct {
	Type byte
	Body []byte
}

// Dial connects and completes the startup handshake with default
// credentials.
func Dial(addr string) (*Conn, error) {
	return DialConfig(addr, Config{User: "test", Database: "tag"})
}

// DialConfig connects with explicit startup options.
func DialConfig(addr string, cfg Config) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{c: nc, br: bufio.NewReader(nc), Params: make(map[string]string), addr: addr}
	if err := c.startup(cfg); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

func (c *Conn) startup(cfg Config) error {
	if cfg.User == "" {
		cfg.User = "test"
	}
	var body []byte
	body = binary.BigEndian.AppendUint32(body, 196608)
	body = appendCString(body, "user")
	body = appendCString(body, cfg.User)
	if cfg.Database != "" {
		body = appendCString(body, "database")
		body = appendCString(body, cfg.Database)
	}
	body = append(body, 0)
	var pkt []byte
	pkt = binary.BigEndian.AppendUint32(pkt, uint32(len(body)+4))
	pkt = append(pkt, body...)
	if _, err := c.c.Write(pkt); err != nil {
		return err
	}
	for {
		m, err := c.ReadMsg()
		if err != nil {
			return err
		}
		switch m.Type {
		case 'R':
			if len(m.Body) < 4 {
				return fmt.Errorf("short authentication message")
			}
			switch code := binary.BigEndian.Uint32(m.Body); code {
			case 0: // AuthenticationOk
			case 3: // cleartext password
				if err := c.writeMsg('p', appendCString(nil, cfg.Password)); err != nil {
					return err
				}
			default:
				return fmt.Errorf("unsupported authentication code %d", code)
			}
		case 'S':
			k, rest := cutCString(m.Body)
			v, _ := cutCString(rest)
			c.Params[k] = v
		case 'K':
			c.pid = int32(binary.BigEndian.Uint32(m.Body[:4]))
			c.secret = int32(binary.BigEndian.Uint32(m.Body[4:8]))
		case 'Z':
			return nil
		case 'E':
			return decodeError(m.Body)
		default:
			return fmt.Errorf("unexpected startup message %q", m.Type)
		}
	}
}

// ReadMsg reads one backend frame.
func (c *Conn) ReadMsg() (Msg, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return Msg{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n < 4 || n > 1<<26 {
		return Msg{}, fmt.Errorf("bad frame length %d", n)
	}
	body := make([]byte, n-4)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return Msg{}, err
	}
	return Msg{Type: hdr[0], Body: body}, nil
}

func (c *Conn) writeMsg(typ byte, body []byte) error {
	var pkt []byte
	pkt = append(pkt, typ)
	pkt = binary.BigEndian.AppendUint32(pkt, uint32(len(body)+4))
	pkt = append(pkt, body...)
	_, err := c.c.Write(pkt)
	return err
}

// RawWrite sends arbitrary bytes — the fault tests use it to speak
// malformed protocol.
func (c *Conn) RawWrite(b []byte) error {
	_, err := c.c.Write(b)
	return err
}

// NetConn exposes the underlying connection (deadlines, hard closes).
func (c *Conn) NetConn() net.Conn { return c.c }

// BackendPID returns the pid from BackendKeyData.
func (c *Conn) BackendPID() int32 { return c.pid }

// Close hard-closes the connection without Terminate.
func (c *Conn) Close() error { return c.c.Close() }

// Terminate sends the graceful goodbye and closes.
func (c *Conn) Terminate() error {
	c.writeMsg('X', nil)
	return c.c.Close()
}

// Cancel opens a fresh connection and fires a CancelRequest carrying this
// connection's key data.
func (c *Conn) Cancel() error {
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	var pkt []byte
	pkt = binary.BigEndian.AppendUint32(pkt, 16)
	pkt = binary.BigEndian.AppendUint32(pkt, 80877102)
	pkt = binary.BigEndian.AppendUint32(pkt, uint32(c.pid))
	pkt = binary.BigEndian.AppendUint32(pkt, uint32(c.secret))
	_, err = nc.Write(pkt)
	return err
}

// ---------------------------------------------------------------------------
// Collected results

// Result is everything a response cycle produced, collected until
// ReadyForQuery.
type Result struct {
	Cols      []string
	Rows      [][]*string // nil element = NULL
	Tags      []string    // CommandComplete tags, in order
	Err       *ServerError
	TxStatus  byte    // from ReadyForQuery
	Suspended bool    // saw PortalSuspended
	Empty     bool    // saw EmptyQueryResponse
	NoData    bool    // saw NoData
	ParamOIDs []int32 // from ParameterDescription
	Seq       []byte  // every message type received, in order
}

// Query runs one simple-protocol query and collects the full response
// cycle. The returned error is transport-level only; server-side errors
// land in Result.Err.
func (c *Conn) Query(sql string) (*Result, error) {
	if err := c.writeMsg('Q', appendCString(nil, sql)); err != nil {
		return nil, err
	}
	return c.Collect()
}

// Collect reads until ReadyForQuery, folding what it sees into a Result.
func (c *Conn) Collect() (*Result, error) {
	res := &Result{}
	for {
		m, err := c.ReadMsg()
		if err != nil {
			return res, err
		}
		res.Seq = append(res.Seq, m.Type)
		switch m.Type {
		case 'T':
			res.Cols = decodeRowDescription(m.Body)
		case 'D':
			res.Rows = append(res.Rows, decodeDataRow(m.Body))
		case 'C':
			res.Tags = append(res.Tags, firstCString(m.Body))
		case 'E':
			if res.Err == nil {
				res.Err = decodeError(m.Body)
			}
			if res.Err != nil && res.Err.Severity == "FATAL" {
				return res, nil // the server is closing this connection
			}
		case 'I':
			res.Empty = true
		case 's':
			res.Suspended = true
		case 'n':
			res.NoData = true
		case 't':
			res.ParamOIDs = decodeParamDescription(m.Body)
		case 'Z':
			if len(m.Body) > 0 {
				res.TxStatus = m.Body[0]
			}
			return res, nil
		case '1', '2', '3', 'S', 'K', 'N':
			// ParseComplete / BindComplete / CloseComplete /
			// ParameterStatus / key data / notice: recorded in Seq only.
		default:
			return res, fmt.Errorf("unexpected message %q", m.Type)
		}
	}
}

// ---------------------------------------------------------------------------
// Extended protocol senders

// SendParse issues Parse. oids may be nil.
func (c *Conn) SendParse(name, query string, oids []int32) error {
	var b []byte
	b = appendCString(b, name)
	b = appendCString(b, query)
	b = binary.BigEndian.AppendUint16(b, uint16(len(oids)))
	for _, o := range oids {
		b = binary.BigEndian.AppendUint32(b, uint32(o))
	}
	return c.writeMsg('P', b)
}

// SendBind issues Bind with all-text parameters; a nil element binds NULL.
func (c *Conn) SendBind(portal, stmt string, params []*string) error {
	var b []byte
	b = appendCString(b, portal)
	b = appendCString(b, stmt)
	b = binary.BigEndian.AppendUint16(b, 0) // param format codes: default text
	b = binary.BigEndian.AppendUint16(b, uint16(len(params)))
	for _, p := range params {
		if p == nil {
			b = binary.BigEndian.AppendUint32(b, 0xFFFFFFFF)
			continue
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(*p)))
		b = append(b, *p...)
	}
	b = binary.BigEndian.AppendUint16(b, 0) // result format codes: default text
	return c.writeMsg('B', b)
}

// SendDescribe issues Describe for kind 'S' (statement) or 'P' (portal).
func (c *Conn) SendDescribe(kind byte, name string) error {
	return c.writeMsg('D', appendCString([]byte{kind}, name))
}

// SendExecute issues Execute with a row limit (0 = no limit).
func (c *Conn) SendExecute(portal string, maxRows int32) error {
	b := appendCString(nil, portal)
	b = binary.BigEndian.AppendUint32(b, uint32(maxRows))
	return c.writeMsg('E', b)
}

// SendClose issues Close for kind 'S' or 'P'.
func (c *Conn) SendClose(kind byte, name string) error {
	return c.writeMsg('C', appendCString([]byte{kind}, name))
}

// SendFlush issues Flush.
func (c *Conn) SendFlush() error { return c.writeMsg('H', nil) }

// SendSync issues Sync.
func (c *Conn) SendSync() error { return c.writeMsg('S', nil) }

// ExtQuery runs sql through the unnamed prepared statement and portal —
// Parse, Bind, Describe, Execute, Sync — and collects the cycle.
func (c *Conn) ExtQuery(sql string, params ...*string) (*Result, error) {
	if err := c.SendParse("", sql, nil); err != nil {
		return nil, err
	}
	if err := c.SendBind("", "", params); err != nil {
		return nil, err
	}
	if err := c.SendDescribe('P', ""); err != nil {
		return nil, err
	}
	if err := c.SendExecute("", 0); err != nil {
		return nil, err
	}
	if err := c.SendSync(); err != nil {
		return nil, err
	}
	return c.Collect()
}

// Str is a convenience for building text parameters.
func Str(s string) *string { return &s }

// ---------------------------------------------------------------------------
// Decoders

func decodeRowDescription(b []byte) []string {
	if len(b) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	cols := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name, rest := cutCString(b)
		cols = append(cols, name)
		if len(rest) < 18 {
			return cols
		}
		b = rest[18:] // table OID, attnum, type OID, typlen, typmod, format
	}
	return cols
}

func decodeDataRow(b []byte) []*string {
	if len(b) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	row := make([]*string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return row
		}
		l := int32(binary.BigEndian.Uint32(b))
		b = b[4:]
		if l < 0 {
			row = append(row, nil)
			continue
		}
		if int(l) > len(b) {
			return row
		}
		s := string(b[:l])
		row = append(row, &s)
		b = b[l:]
	}
	return row
}

func decodeParamDescription(b []byte) []int32 {
	if len(b) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	oids := make([]int32, 0, n)
	for i := 0; i < n && len(b) >= 4; i++ {
		oids = append(oids, int32(binary.BigEndian.Uint32(b)))
		b = b[4:]
	}
	return oids
}

func decodeError(b []byte) *ServerError {
	e := &ServerError{}
	for len(b) > 0 && b[0] != 0 {
		field := b[0]
		val, rest := cutCString(b[1:])
		switch field {
		case 'S':
			e.Severity = val
		case 'C':
			e.Code = val
		case 'M':
			e.Message = val
		}
		b = rest
	}
	return e
}

func appendCString(b []byte, s string) []byte {
	return append(append(b, s...), 0)
}

func cutCString(b []byte) (string, []byte) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), b[i+1:]
		}
	}
	return string(b), nil
}

func firstCString(b []byte) string {
	s, _ := cutCString(b)
	return s
}
