package pgwire

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tag/internal/server/pgwire/pgwiretest"
	"tag/internal/sqldb"
)

// TestConcurrentSessions hammers the server with N clients interleaving
// explicit transactions, large parallel-eligible scans, suspended
// portals, CancelRequests, and abrupt disconnects — the shapes that
// exercise every cross-goroutine surface (cancel registry, session
// registry, write latch, snapshot manager). The table is big enough
// (≥ the engine's 4096-row parallel threshold) and the worker pool wide
// enough that scans really do fan out. Run under -race in CI; afterwards
// the startServer cleanup asserts zero snapshots, cursors, transactions,
// and workers.
func TestConcurrentSessions(t *testing.T) {
	srv, db, addr := startServer(t, Options{}, sqldb.WithMaxWorkers(4))
	db.MustExec(`CREATE TABLE r (id INTEGER, grp INTEGER, v REAL)`)
	tx := db.Begin()
	for i := 0; i < 6000; i++ {
		if _, err := tx.Exec(`INSERT INTO r VALUES (?, ?, ?)`, i, i%13, float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	iters := 12
	if testing.Short() {
		iters = 4
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + ci)))
			for it := 0; it < iters; it++ {
				if err := raceIteration(r, addr, ci, it); err != nil {
					errCh <- fmt.Errorf("client %d iter %d: %w", ci, it, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	_ = srv
}

// raceIteration is one client's randomized protocol episode on a fresh
// connection.
func raceIteration(r *rand.Rand, addr string, ci, it int) error {
	c, err := pgwiretest.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	fail := func(stage string, res *pgwiretest.Result, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %v", stage, err)
		}
		return fmt.Errorf("%s: %v", stage, res.Err)
	}

	switch r.Intn(5) {
	case 0: // big parallel-eligible scan, fully drained
		res, err := c.Query(`SELECT grp, count(*), sum(v) FROM r GROUP BY grp ORDER BY grp`)
		if err != nil || res.Err != nil {
			return fail("group scan", res, err)
		}
		if len(res.Rows) != 13 {
			return fmt.Errorf("group scan: %d groups, want 13", len(res.Rows))
		}
	case 1: // explicit transaction, commit or rollback
		for _, q := range []string{
			`BEGIN`,
			fmt.Sprintf(`UPDATE r SET v = v + 1 WHERE id %% 977 = %d`, r.Intn(977)),
			`SELECT count(*) FROM r`,
		} {
			res, err := c.Query(q)
			if err != nil || res.Err != nil {
				return fail(q, res, err)
			}
		}
		end := `ROLLBACK`
		if r.Intn(2) == 0 {
			end = `COMMIT`
		}
		if res, err := c.Query(end); err != nil || res.Err != nil {
			return fail(end, res, err)
		}
	case 2: // suspended portal, then cancel from a second connection
		c.SendParse("", `SELECT id FROM r ORDER BY id`, nil)
		c.SendBind("", "", nil)
		c.SendExecute("", 3)
		c.SendFlush()
		for {
			m, err := c.ReadMsg()
			if err != nil {
				return fmt.Errorf("suspend read: %v", err)
			}
			if m.Type == 's' {
				break
			}
			if m.Type == 'E' {
				return fmt.Errorf("suspend leg errored")
			}
		}
		if err := c.Cancel(); err != nil {
			return fmt.Errorf("cancel: %v", err)
		}
		// Whatever the cancel race decides, Sync must land a clean
		// ReadyForQuery (a 57014 error on the portal is fine).
		c.SendSync()
		if _, err := c.Collect(); err != nil {
			return fmt.Errorf("post-cancel sync: %v", err)
		}
	case 3: // abrupt disconnect with an open transaction and portal
		if res, err := c.Query(`BEGIN`); err != nil || res.Err != nil {
			return fail("begin", res, err)
		}
		c.SendParse("", `SELECT v FROM r WHERE grp = 3`, nil)
		c.SendBind("", "", nil)
		c.SendExecute("", 2)
		c.SendFlush()
		// Read at most a few frames, then vanish mid-cycle.
		for i := 0; i < 3; i++ {
			if _, err := c.ReadMsg(); err != nil {
				break
			}
		}
		return nil // deferred Close kills the connection abruptly
	default: // extended-protocol parameterized reads
		for k := 0; k < 3; k++ {
			grp := pgwiretest.Str(fmt.Sprint(r.Intn(13)))
			res, err := c.ExtQuery(`SELECT count(*) FROM r WHERE grp = ?`, grp)
			if err != nil || res.Err != nil {
				return fail("ext count", res, err)
			}
			if len(res.Rows) != 1 {
				return fmt.Errorf("ext count: %d rows", len(res.Rows))
			}
		}
	}
	c.Terminate()
	return nil
}
