package pgwire

import (
	"context"
	"errors"

	"tag/internal/sqldb"
)

// This file classifies every error the session can hit into the
// (severity, SQLSTATE, message) triple the ErrorResponse carries. Engine
// errors go through sqldb.SQLStateFor — the single mapping table pinned
// by TestSQLStateMappingComplete — so the wire surface can never drift
// from the engine's typed error contract.

// wireError is an error the server reports to the client.
type wireError struct {
	severity string // ERROR or FATAL (FATAL implies the connection closes)
	sqlState string
	msg      string
}

func (e *wireError) Error() string { return e.msg }

func wireErrf(sqlState, msg string) *wireError {
	return &wireError{severity: "ERROR", sqlState: sqlState, msg: msg}
}

func fatalErrf(sqlState, msg string) *wireError {
	return &wireError{severity: "FATAL", sqlState: sqlState, msg: msg}
}

// SQLSTATEs for conditions that originate in the protocol layer rather
// than the engine.
const (
	stateProtocolViolation   = "08P01"
	stateFeatureNotSupported = "0A000"
	stateInvalidText         = "22P02" // parameter bytes not decodable as declared type
	stateFailedTransaction   = "25P02" // statement rejected inside a failed transaction
	stateNoActiveTransaction = "25P01"
	stateUndefinedPrepared   = "26000"
	stateUndefinedCursor     = "34000"
	stateDuplicateCursor     = "42P03"
	stateDuplicatePrepared   = "42P05"
	stateInvalidPassword     = "28P01"
	stateTooManyConnections  = "53300"
	stateAdminShutdown       = "57P01"
	stateQueryCanceled       = "57014"
	stateInternal            = "XX000"
)

// toWireError classifies any error from statement execution. Context
// cancellation is folded into the engine's ErrCanceled state so a cancel
// that races ahead of the engine's own check still reports 57014.
func toWireError(err error) *wireError {
	var we *wireError
	if errors.As(err, &we) {
		return we
	}
	var pe *protocolError
	if errors.As(err, &pe) {
		return wireErrf(pe.sqlState, pe.msg)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return wireErrf(stateQueryCanceled, "canceling statement due to user request")
	}
	return wireErrf(sqldb.SQLStateFor(err), err.Error())
}
