package pgwire

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"tag/internal/sqldb"
)

// Native fuzz harnesses for the wire protocol's two attacker-facing
// decoders: the startup negotiation (FuzzStartup) and the post-handshake
// message loop (FuzzWireFrame). Both feed arbitrary bytes to a real
// server over an in-memory pipe and demand the same contract the
// conformance suite pins for well-formed traffic:
//
//   - no panic, ever (a panic in the session goroutine kills the fuzz
//     process and is reported as a crasher);
//   - the connection unwinds completely — zero snapshots, cursors, and
//     transactions after the handler returns;
//   - malformed framing produces a typed protocol error or a silent
//     close, never unbounded allocation (maxMessageLen/maxStartupLen).
//
// CI runs each target briefly (-fuzz with -fuzztime) as a smoke; the
// seed corpus under testdata/fuzz/ keeps the interesting shapes in the
// repo so plain `go test` replays them forever.

// validStartup builds a well-formed v3 StartupMessage.
func validStartup() []byte {
	body := []byte{0, 3, 0, 0}
	for _, s := range []string{"user", "fuzz", "database", "tag"} {
		body = append(append(body, s...), 0)
	}
	body = append(body, 0)
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(4+len(body)))
	copy(out[4:], body)
	return out
}

// fuzzConn feeds raw bytes to handleConn over a pipe and waits for the
// handler to unwind, then asserts the engine leaked nothing.
func fuzzConn(t *testing.T, srv *Server, db *sqldb.Database, chunks ...[]byte) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.handleConn(server)
		close(done)
	}()
	go io.Copy(io.Discard, client) // drain backend output so writes never block

	client.SetWriteDeadline(time.Now().Add(2 * time.Second))
	for _, chunk := range chunks {
		if _, err := client.Write(chunk); err != nil {
			break // handler already gave up on us; that's a valid outcome
		}
	}
	client.Close()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handleConn did not unwind after input exhausted")
	}
	if n := db.LiveSnapshots(); n != 0 {
		t.Fatalf("leaked %d live snapshots", n)
	}
	st := db.Stats()
	if st.OpenCursors != 0 || st.ActiveTxns != 0 {
		t.Fatalf("leaked %d cursors, %d txns", st.OpenCursors, st.ActiveTxns)
	}
}

// FuzzStartup throws arbitrary bytes at the startup negotiation: length
// prefixes, protocol codes, SSL/GSS probes, cancel packets, parameter
// lists. The handler must close cleanly whatever arrives.
func FuzzStartup(f *testing.F) {
	db := sqldb.NewDatabase()
	defer db.Close()
	srv := NewServer(db, Options{})

	f.Add(validStartup())
	f.Add([]byte{0, 0, 0, 8, 4, 210, 22, 47})                              // SSLRequest
	f.Add([]byte{0, 0, 0, 8, 4, 210, 22, 48})                              // GSSENCRequest
	f.Add(append([]byte{0, 0, 0, 16, 4, 210, 22, 46}, make([]byte, 8)...)) // CancelRequest
	f.Add([]byte{0, 0})                                                    // truncated length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                                  // absurd length
	f.Add([]byte{0, 0, 0, 9, 0, 2, 0, 0, 0})                               // protocol v2
	f.Add([]byte{0, 0, 0, 12, 0, 3, 0, 0, 'u', 's', 'e', 'r'})             // params missing NUL
	f.Add(append([]byte{0, 0, 0, 8, 4, 210, 22, 47}, validStartup()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzConn(t, srv, db, data)
	})
}

// FuzzWireFrame completes a valid handshake and then throws arbitrary
// bytes at the message loop: real queries, extended-protocol cycles,
// truncated frames, lying length prefixes, unknown types.
func FuzzWireFrame(f *testing.F) {
	db := sqldb.NewDatabase()
	defer db.Close()
	db.MustExec(`CREATE TABLE f (id INTEGER, v TEXT)`)
	db.MustExec(`INSERT INTO f VALUES (1, 'one'), (2, NULL)`)
	srv := NewServer(db, Options{})

	cstr := func(s string) []byte { return append([]byte(s), 0) }
	f.Add(frameMsg('Q', cstr(`SELECT id, v FROM f ORDER BY id`)))
	f.Add(frameMsg('Q', cstr(`BEGIN; INSERT INTO f VALUES (3, 'x'); ROLLBACK`)))
	f.Add(frameMsg('Q', cstr(``)))
	// A full extended cycle: Parse, Bind, Describe, Execute, Sync.
	ext := frameMsg('P', append(append(cstr(""), cstr(`SELECT v FROM f WHERE id = ?`)...), 0, 1, 0, 0, 0, 23))
	ext = append(ext, frameMsg('B', append(append(cstr(""), cstr("")...), 0, 0, 0, 1, 0, 0, 0, 1, '1', 0, 0))...)
	ext = append(ext, frameMsg('D', append([]byte{'P'}, cstr("")...))...)
	ext = append(ext, frameMsg('E', append(cstr(""), 0, 0, 0, 0))...)
	ext = append(ext, frameMsg('S', nil)...)
	f.Add(ext)
	f.Add(frameMsg('X', nil))                  // Terminate
	f.Add([]byte{0x7f, 0, 0, 0, 4})            // unknown type
	f.Add([]byte{'Q', 0xff, 0xff, 0xff, 0xff}) // oversized frame
	f.Add([]byte{'Q', 0, 0, 0, 100, 'S', 'E'}) // length lies about body
	f.Add([]byte{'Q', 0, 0, 0, 3})             // length below minimum
	f.Add(frameMsg('B', cstr("nope")))         // truncated Bind fields

	startup := validStartup()
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzConn(t, srv, db, startup, data)
	})
}
