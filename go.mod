module tag

go 1.22
