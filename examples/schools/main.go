// Schools: the paper's world-knowledge scenario on california_schools —
// "What is the grade span offered in the school with the highest longitude
// in cities that are part of the 'Silicon Valley' region?" (Appendix A) —
// contrasting vanilla Text2SQL (enumerating region members inside SQL,
// from lossy parametric knowledge) with the TAG pipeline (per-city
// recognition claims through a semantic filter).
//
//	go run ./examples/schools
package main

import (
	"context"
	"fmt"
	"log"

	"tag"
)

func main() {
	ctx := context.Background()
	sys, err := tag.Open("california_schools")
	if err != nil {
		log.Fatal(err)
	}
	question := "What is the grade span offered of the school with the highest longitude located in a city that is part of the 'Silicon Valley' region?"

	// Vanilla Text2SQL path: the full TAG pipeline's synthesis compiles the
	// knowledge clause into an IN-list from the model's parametric memory.
	resp, err := sys.Ask(ctx, question)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Text2SQL-style synthesis:")
	fmt.Println(" ", resp.SQL)
	fmt.Println("  answer:", resp.Answer)

	// Hand-written TAG path: dedupe the city column, ask one recognition
	// claim per distinct city, semi-join back, then take the relational
	// argmax. (This mirrors the paper's Appendix C pipeline.)
	df, err := sys.FrameQuery(
		"SELECT School, City, Longitude, GSoffered FROM schools ORDER BY Longitude DESC")
	if err != nil {
		log.Fatal(err)
	}
	cities, err := df.Distinct("City")
	if err != nil {
		log.Fatal(err)
	}
	svCities, err := cities.SemFilter(ctx, sys.Model(),
		"{City} is a city in the Silicon Valley region")
	if err != nil {
		log.Fatal(err)
	}
	allowed := map[string]bool{}
	names, _ := svCities.Strings("City")
	for _, c := range names {
		allowed[c] = true
	}
	sv := df.Filter(func(get func(string) tag.Value) bool {
		return allowed[get("City").AsText()]
	})
	fmt.Println("\nHand-written TAG pipeline:")
	fmt.Printf("  %d schools -> %d distinct cities -> %d believed Silicon Valley cities -> %d schools\n",
		df.Len(), cities.Len(), svCities.Len(), sv.Len())
	if sv.Len() == 0 {
		log.Fatal("no Silicon Valley schools found")
	}
	top := sv.Head(1)
	fmt.Printf("  easternmost: %s (%s) — grade span %q\n",
		top.Value(0, "School").AsText(), top.Value(0, "City").AsText(),
		top.Value(0, "GSoffered").AsText())
	fmt.Printf("\nsimulated LM time: %.2fs\n", sys.LMSeconds())
}
