// Formula1: the paper's Figure 2 aggregation scenario — "Provide
// information about the races held on Sepang International Circuit" —
// answered three ways, showing why aggregation queries break RAG and
// reward TAG.
//
//	go run ./examples/formula1
package main

import (
	"context"
	"fmt"
	"log"

	"tag"
)

func main() {
	ctx := context.Background()

	// Render the paper's three-panel comparison (RAG vs Text2SQL + LM vs
	// hand-written TAG) with the calibrated fallible model.
	fig, err := tag.Figure2(ctx, tag.DefaultProfile())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)

	// Then build the TAG answer by hand to show the operator chain: exact
	// relational retrieval of every Sepang race, then one semantic
	// aggregation over the rows.
	sys, err := tag.Open("formula_1")
	if err != nil {
		log.Fatal(err)
	}
	races, err := sys.FrameQuery(`
		SELECT races.year, races.round, races.name, races.date
		FROM races JOIN circuits ON races.circuitId = circuits.circuitId
		WHERE circuits.name = 'Sepang International Circuit'
		ORDER BY races.year`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relational stage retrieved %d races (every one, unlike top-10 retrieval)\n",
		races.Len())
	summary, err := races.SemAggRows(ctx, sys.Model(),
		"Summarize the races held on Sepang International Circuit")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhand-built TAG answer:")
	fmt.Println(summary)
}
