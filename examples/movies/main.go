// Movies: the paper's Figure 1 worked example, written as a hand-crafted
// TAG pipeline over semantic operators —
//
//	"Summarize the reviews of the highest grossing romance movie
//	 considered a 'classic'."
//
// The pipeline mirrors Appendix C's LOTUS programs: relational filtering
// and ordering stay exact; the LM judges "classic" per candidate title and
// writes the final summary.
//
//	go run ./examples/movies
package main

import (
	"context"
	"fmt"
	"log"

	"tag"
)

func main() {
	ctx := context.Background()
	sys, err := tag.Open("movies")
	if err != nil {
		log.Fatal(err)
	}
	model := sys.Model()

	// Stage 1 (relational): romance movies, ordered by revenue.
	df, err := sys.FrameQuery(
		"SELECT id, title, revenue FROM movies WHERE genre = 'Romance' ORDER BY revenue DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("romance movies: %d\n", df.Len())

	// Stage 2 (semantic filter): keep widely-acknowledged classics. One
	// batched LM call over the candidate titles.
	classics, err := df.SemFilter(ctx, model, "{title} is a movie widely considered a classic")
	if err != nil {
		log.Fatal(err)
	}
	titles, _ := classics.Strings("title")
	fmt.Printf("classics among them: %v\n", titles)

	// Stage 3 (relational): the highest-grossing classic is the first row
	// (the frame is already ordered by revenue).
	top := classics.Head(1)
	if top.Len() == 0 {
		log.Fatal("no classic romance movies found")
	}
	title := top.Value(0, "title").AsText()
	fmt.Printf("highest grossing romance classic: %s (revenue %s)\n\n",
		title, top.Value(0, "revenue").AsText())

	// Stage 4 (retrieve + semantic aggregation): summarise its reviews.
	reviews, err := sys.FrameQuery(
		"SELECT r.body FROM reviews r JOIN movies m ON r.movie_id = m.id WHERE m.title = ?", title)
	if err != nil {
		log.Fatal(err)
	}
	summary, err := reviews.SemAgg(ctx, model, "Summarize the reviews", "body")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("summary of reviews:")
	fmt.Println(" ", summary)
	fmt.Printf("\nsimulated LM time: %.2fs\n", sys.LMSeconds())
}
