// Quickstart: open a built-in domain, ask one question through the full
// TAG pipeline, and inspect each stage (syn → exec → gen).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tag"
)

func main() {
	ctx := context.Background()

	// A System wires a database to a language model through the TAG
	// pipeline. "movies" is the worked example from the paper's Figure 1.
	// The oracle profile removes the simulated model's calibrated
	// fallibility so the pipeline mechanics are easy to follow; drop the
	// option to see the benchmark-calibrated 70B-like behaviour.
	sys, err := tag.Open("movies", tag.WithLMUDFs(), tag.WithProfile(tag.OracleProfile()))
	if err != nil {
		log.Fatal(err)
	}

	// The embedded database is a real SQL engine.
	res, err := sys.DB().Query("SELECT COUNT(*) AS movies, MAX(revenue) AS top FROM movies")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %s movies, top revenue %s\n\n",
		res.Rows[0][0].AsText(), res.Rows[0][1].AsText())

	// Ask a question in natural language. The system synthesises SQL
	// (including an LM UDF for the 'classic' predicate), executes it, and
	// generates the answer.
	question := "Among the movies whose genre is 'Romance', how many of them are considered a 'classic'?"
	resp, err := sys.Ask(ctx, question)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q:", resp.Question)
	fmt.Println("  syn(R)  ->", resp.SQL)
	fmt.Printf("  exec(Q) -> %d row(s)\n", len(resp.Table.Rows))
	fmt.Println("  gen(T)  ->", resp.Answer)
	fmt.Printf("\nsimulated LM time: %.2fs\n", sys.LMSeconds())
}
