// Quickstart: open a built-in domain, query the embedded engine through
// both of its surfaces (materialised and streaming), handle a typed
// engine error, ask one question through the full TAG pipeline
// (syn → exec → gen), and read the engine's observability counters.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tag"
)

func main() {
	ctx := context.Background()

	// A System wires a database to a language model through the TAG
	// pipeline. "movies" is the worked example from the paper's Figure 1.
	// The oracle profile removes the simulated model's calibrated
	// fallibility so the pipeline mechanics are easy to follow; drop the
	// option to see the benchmark-calibrated 70B-like behaviour.
	sys, err := tag.Open("movies", tag.WithLMUDFs(), tag.WithProfile(tag.OracleProfile()))
	if err != nil {
		log.Fatal(err)
	}

	// The embedded database is a real SQL engine. Query materialises the
	// whole result at once — right for small aggregates like this one.
	res, err := sys.DB().Query("SELECT COUNT(*) AS movies, MAX(revenue) AS top FROM movies")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %s movies, top revenue %s\n\n",
		res.Rows[0][0].AsText(), res.Rows[0][1].AsText())

	// QueryRows streams instead: rows are produced one at a time, so a
	// LIMIT stops the scan as soon as its window fills, and cancelling
	// ctx stops a scan mid-flight. Always Close the cursor (it holds the
	// database's read lock until then).
	rows, err := sys.QueryRows(ctx,
		"SELECT title, revenue FROM movies WHERE revenue > 100 LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three big earners (streamed):")
	for rows.Next() {
		var title string
		var revenue float64
		if err := rows.Scan(&title, &revenue); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s %.0f\n", title, revenue)
	}
	if err := rows.Close(); err != nil {
		log.Fatal(err)
	}

	// Every cursor carries its own recorder: Rows.Stats reports exactly
	// what this query did — here the LIMIT stopped the scan after the
	// returned rows, which no engine-wide counter could attribute to one
	// query among many.
	qs := rows.Stats()
	fmt.Printf("  that query alone: %d rows scanned, %d emitted, in %v\n",
		qs.RowsScanned, qs.RowsEmitted, qs.Elapsed)

	// Engine errors are typed: every error carries a stable code, so
	// callers branch with errors.As instead of matching message text.
	_, err = sys.DB().Query("SELECT * FROM box_office")
	var se *tag.Error
	if errors.As(err, &se) {
		fmt.Printf("\ntyped error: code=%s msg=%q\n\n", se.Code, se.Msg)
	}

	// The planner is order-aware: give a column an index and range
	// predicates binary-search the index's ordered view instead of
	// scanning, while ORDER BY on the same column streams rows in index
	// order — no sort at all, and under a LIMIT only the returned rows
	// are ever read. Explain shows the plan a query will actually run.
	sys.DB().MustExec("CREATE INDEX idx_movies_revenue ON movies (revenue)")
	const ranged = "SELECT title, revenue FROM movies WHERE revenue > 100 ORDER BY revenue DESC LIMIT 2"
	plan, err := sys.DB().Explain(ranged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan for", ranged)
	for _, line := range plan {
		fmt.Println("  " + line)
	}
	res, err = sys.DB().Query(ranged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top earners above 100: %d row(s)\n\n", len(res.Rows))

	// EXPLAIN ANALYZE runs the statement for real and annotates the same
	// tree with what each operator actually did: rows produced, rows
	// scanned per access path, and wall time — the proof that the ordered
	// range scan above read only the rows it returned.
	aq, err := sys.ExplainAnalyze(ctx, ranged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("explain analyze for the same query:")
	for _, line := range aq.Plan {
		fmt.Println("  " + line)
	}
	fmt.Printf("  -- %d scanned, %d emitted in %v\n\n",
		aq.Stats.RowsScanned, aq.Stats.RowsEmitted, aq.Stats.Elapsed)

	// Ask a question in natural language. The system synthesises SQL
	// (including an LM UDF for the 'classic' predicate), executes it with
	// the caller's context, and generates the answer.
	question := "Among the movies whose genre is 'Romance', how many of them are considered a 'classic'?"
	resp, err := sys.Ask(ctx, question)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q:", resp.Question)
	fmt.Println("  syn(R)  ->", resp.SQL)
	fmt.Printf("  exec(Q) -> %d row(s)\n", len(resp.Table.Rows))
	fmt.Println("  gen(T)  ->", resp.Answer)

	// Stats exposes what the engine did: queries served, plan-cache hits,
	// rows scanned vs emitted (the LIMIT above scanned a handful of rows,
	// not the table), index vs full scans, and open cursors.
	st := sys.Stats()
	fmt.Printf("\nengine stats: %d queries, plan cache %d/%d hit/miss, "+
		"%d rows scanned, %d emitted, %d index / %d range / %d full scans, "+
		"%d index-served orders, subplan cache %d/%d hit/miss, %d open cursors\n",
		st.Queries, st.PlanCacheHits, st.PlanCacheMisses,
		st.RowsScanned, st.RowsEmitted, st.IndexScans, st.IndexRangeScans, st.FullScans,
		st.OrderedIndexOrders, st.SubplanCacheHits, st.SubplanCacheMisses, st.OpenCursors)
	fmt.Printf("simulated LM time: %.2fs\n", sys.LMSeconds())
}
