// Command tagquery answers one natural-language question over a built-in
// domain with the full TAG pipeline, printing each stage (Figure 1):
//
//	tagquery -domain california_schools \
//	  "Among the schools, how many of them are located in a city that is part of the 'Silicon Valley' region?"
//
// Flags select the method: the default is the TAG pipeline with automatic
// query synthesis; -handwritten uses the expert semantic-operator
// pipeline; -udf lets synthesised SQL call LM UDFs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"tag/internal/core"
	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/tagbench"
	"tag/internal/tagbench/domains"
	"tag/internal/world"
)

func main() {
	domain := flag.String("domain", "movies", "built-in domain to query")
	udf := flag.Bool("udf", false, "allow LM UDFs inside synthesised SQL")
	handwritten := flag.Bool("handwritten", false, "use the hand-written TAG pipeline instead of automatic synthesis")
	oracle := flag.Bool("oracle", false, "use the perfect-LM profile")
	flag.Parse()

	question := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if question == "" {
		fmt.Fprintln(os.Stderr, "usage: tagquery [-domain D] [-udf] [-handwritten] \"question\"")
		os.Exit(2)
	}

	db, err := domains.Build(*domain)
	if err != nil {
		fatal(err)
	}
	profile := llm.DefaultProfile()
	if *oracle {
		profile = llm.OracleProfile()
	}
	model := llm.NewSimLM(world.Default(), profile, llm.NewClock(), llm.DefaultCostModel())
	env := core.NewEnv(*domain, db)
	// Ctrl-C cancels the pipeline — including an in-flight database scan,
	// which the engine stops with a typed ErrCanceled error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *handwritten {
		spec, err := nlq.Parse(question)
		if err != nil {
			fatal(fmt.Errorf("cannot parse question: %w", err))
		}
		m := &core.HandwrittenTAG{Model: model}
		ans, err := m.Answer(ctx, env, &tagbench.Query{ID: "adhoc", Spec: spec, NL: question})
		if err != nil {
			fatal(err)
		}
		fmt.Println("— pipeline —")
		fmt.Print(core.PipelineFor(spec))
		fmt.Println("— answer —")
		if ans.Text != "" {
			fmt.Println(ans.Text)
		} else {
			fmt.Println(ans.Values)
		}
		fmt.Printf("(%.2f simulated LM seconds)\n", model.Clock().Now())
		return
	}

	p := &core.Pipeline{Model: model, UseLMUDFs: *udf}
	res, err := p.Run(ctx, env, question)
	if err != nil {
		if res != nil && res.SQL != "" {
			fmt.Println("— syn(R) → Q —")
			fmt.Println(res.SQL)
		}
		fatal(err)
	}
	fmt.Println("— syn(R) → Q —")
	fmt.Println(res.SQL)
	fmt.Println("— exec(Q) → T —")
	fmt.Print(res.Table.String())
	fmt.Println("— gen(R, T) → A —")
	fmt.Println(res.Answer)
	fmt.Printf("(%.2f simulated LM seconds)\n", model.Clock().Now())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tagquery:", err)
	os.Exit(1)
}
