// Command tagbench regenerates the TAG paper's evaluation artefacts:
//
//	tagbench -table 1      Table 1 (accuracy + ET, overall and per type)
//	tagbench -table 2      Table 2 (accuracy + ET, knowledge vs reasoning)
//	tagbench -figure 2     Figure 2 (qualitative aggregation comparison)
//	tagbench -coverage     aggregation fact-coverage extension
//	tagbench -queries      list the 80 benchmark queries
//	tagbench -explain ID   print the hand-written TAG pipeline for a query
//	tagbench -outcomes     per-query per-method outcomes (CSV)
//
// With no flags it prints both tables, the speedup line and Figure 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tag/internal/core"
	"tag/internal/llm"
	"tag/internal/tagbench"
)

func main() {
	table := flag.Int("table", 0, "print Table 1 or Table 2 only")
	figure := flag.Int("figure", 0, "print Figure 2 only")
	coverage := flag.Bool("coverage", false, "print the aggregation coverage extension")
	listQueries := flag.Bool("queries", false, "list the 80 benchmark queries")
	explain := flag.String("explain", "", "print the hand-written TAG pipeline for a query id (e.g. RR-01)")
	outcomes := flag.Bool("outcomes", false, "print per-query outcomes as CSV")
	oracle := flag.Bool("oracle", false, "use the perfect-LM profile (ablation)")
	flag.Parse()

	if *listQueries {
		for _, q := range tagbench.Queries() {
			fmt.Printf("%-6s %-12s %-10s %s\n", q.ID, q.Spec.Type, q.Spec.Category, q.NL)
		}
		return
	}
	if *explain != "" {
		for _, q := range tagbench.Queries() {
			if q.ID == *explain {
				fmt.Printf("%s  (%s, %s)\n%s\n\n%s", q.ID, q.Spec.Type, q.Spec.Category, q.NL,
					core.PipelineFor(q.Spec))
				return
			}
		}
		fmt.Fprintf(os.Stderr, "tagbench: no query %q\n", *explain)
		os.Exit(1)
	}

	profile := llm.DefaultProfile()
	if *oracle {
		profile = llm.OracleProfile()
	}
	ctx := context.Background()
	envs, err := core.BuildEnvs()
	if err != nil {
		fatal(err)
	}

	if *figure == 2 {
		fig, err := core.Figure2(ctx, envs, profile)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig)
		return
	}

	rep, err := core.RunBenchmark(ctx, envs, core.NewDefaultMethods(profile), nil)
	if err != nil {
		fatal(err)
	}
	rep.SortOutcomes()

	switch {
	case *outcomes:
		fmt.Println("query,method,type,category,correct,coverage,seconds,error")
		for _, o := range rep.Outcomes {
			errStr := ""
			if o.Err != nil {
				errStr = "error"
			}
			fmt.Printf("%s,%q,%s,%s,%t,%.2f,%.2f,%s\n",
				o.QueryID, o.Method, o.Type, o.Category, o.Correct, o.Coverage, o.Seconds, errStr)
		}
	case *coverage:
		fmt.Println(rep.CoverageSummary())
	case *table == 1:
		fmt.Println(rep.Table1())
	case *table == 2:
		fmt.Println(rep.Table2())
	default:
		fmt.Println(rep.Table1())
		fmt.Println(rep.Table2())
		fmt.Println(rep.SpeedupLine())
		fmt.Println()
		fmt.Println(rep.CoverageSummary())
		fmt.Println(rep.UsageTable())
		fig, err := core.Figure2(ctx, envs, profile)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tagbench:", err)
	os.Exit(1)
}
