// Command tagsql is an interactive SQL shell over the embedded engine,
// with the built-in benchmark domains preloaded and — with -udf — the LM
// user-defined functions registered, so semantic predicates run inside
// SQL:
//
//	tagsql -domain movies -udf
//	sql> SELECT title FROM movies WHERE LLM_FILTER('classic movie', title);
//
// Meta commands: .tables, .schema, .domains, .explain, .analyze, .stats,
// .dump, .restore, .quit. .explain shows the plan a SELECT would run;
// .analyze runs it and annotates the same tree with real per-operator
// counts and the query's totals (EXPLAIN ANALYZE). .dump <file> writes the
// database as a SQL script; .restore <file> loads one atomically (all
// statements apply in a single transaction, or none do).
//
// Queries run under a signal-aware context: the first Ctrl-C cancels the
// in-flight statement mid-scan (the engine returns a typed ErrCanceled
// error) instead of killing the shell.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"tag/internal/core"
	"tag/internal/llm"
	"tag/internal/sqldb"
	"tag/internal/tagbench/domains"
	"tag/internal/world"
)

func main() {
	domain := flag.String("domain", "movies", "built-in domain to load (see .domains)")
	udf := flag.Bool("udf", false, "register LM UDFs (LLM_FILTER/LLM_SCORE/LLM_MAP)")
	execSQL := flag.String("e", "", "execute one statement and exit")
	flag.Parse()

	db, err := domains.Build(*domain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagsql:", err)
		os.Exit(1)
	}
	if *udf {
		model := llm.NewSimLM(world.Default(), llm.DefaultProfile(), llm.NewClock(), llm.DefaultCostModel())
		core.RegisterLMUDFs(context.Background(), db, model)
	}

	if *execSQL != "" {
		run(db, *execSQL)
		return
	}

	fmt.Printf("tagsql — embedded TAG SQL shell (domain %s, LM UDFs %v)\n", *domain, *udf)
	fmt.Println(`type SQL terminated by ';', or .tables / .schema / .domains / .explain <sql> / .analyze <sql> / .stats / .dump <file> / .restore <file> / .quit`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("sql> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == ".quit" || trimmed == ".exit":
			return
		case trimmed == ".tables":
			for _, t := range db.TableNames() {
				fmt.Println(t)
			}
			fmt.Print("sql> ")
			continue
		case trimmed == ".schema":
			fmt.Println(db.SchemaSQL())
			fmt.Print("sql> ")
			continue
		case strings.HasPrefix(trimmed, ".explain "):
			lines, err := db.Explain(strings.TrimPrefix(trimmed, ".explain "))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				for _, l := range lines {
					fmt.Println(l)
				}
			}
			fmt.Print("sql> ")
			continue
		case strings.HasPrefix(trimmed, ".analyze "):
			analyze(db, strings.TrimPrefix(trimmed, ".analyze "))
			fmt.Print("sql> ")
			continue
		case trimmed == ".stats":
			printStats(db)
			fmt.Print("sql> ")
			continue
		case strings.HasPrefix(trimmed, ".dump"):
			dump(db, strings.TrimSpace(strings.TrimPrefix(trimmed, ".dump")))
			fmt.Print("sql> ")
			continue
		case strings.HasPrefix(trimmed, ".restore"):
			restore(db, strings.TrimSpace(strings.TrimPrefix(trimmed, ".restore")))
			fmt.Print("sql> ")
			continue
		case trimmed == ".domains":
			for _, d := range append(domains.Names(), "movies") {
				fmt.Println(d)
			}
			fmt.Print("sql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			run(db, buf.String())
			buf.Reset()
			fmt.Print("sql> ")
		} else {
			fmt.Print("  -> ")
		}
	}
}

func run(db *sqldb.Database, src string) {
	src = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), ";"))
	if src == "" {
		return
	}
	// Ctrl-C cancels the in-flight statement; the shell survives.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if strings.HasPrefix(strings.ToUpper(src), "SELECT") {
		res, err := db.QueryContext(ctx, src)
		if err != nil {
			printErr(err)
			return
		}
		fmt.Print(res.String())
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return
	}
	n, err := db.ExecContext(ctx, src)
	if err != nil {
		printErr(err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

// analyze runs EXPLAIN ANALYZE on one statement under a signal-aware
// context and prints the annotated operator tree plus the query's totals.
func analyze(db *sqldb.Database, src string) {
	src = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), ";"))
	if src == "" {
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	aq, err := db.ExplainAnalyze(ctx, src)
	if err != nil {
		printErr(err)
		return
	}
	for _, l := range aq.Plan {
		fmt.Println(l)
	}
	qs := aq.Stats
	fmt.Printf("-- %d scanned, %d emitted, %d index / %d range / %d full scans, %d index-served orders, %d tombstones skipped, subplan %d/%d hit/miss, %v\n",
		qs.RowsScanned, qs.RowsEmitted, qs.IndexScans, qs.IndexRangeScans, qs.FullScans,
		qs.OrderedIndexOrders, qs.TombstonesSkipped, qs.SubplanCacheHits, qs.SubplanCacheMisses, qs.Elapsed.Round(time.Microsecond))
}

// dump writes the database as a replayable SQL script — the same format
// Database.Dump / .restore and the WAL checkpointer use.
func dump(db *sqldb.Database, path string) {
	if path == "" {
		_ = db.Dump(os.Stdout)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		printErr(&sqldb.Error{Code: sqldb.ErrIO, Msg: "dump: " + err.Error(), Cause: err})
		return
	}
	werr := db.Dump(f)
	cerr := f.Close()
	if werr == nil && cerr != nil {
		werr = &sqldb.Error{Code: sqldb.ErrIO, Msg: "dump: " + cerr.Error(), Cause: cerr}
	}
	if werr != nil {
		printErr(werr)
		return
	}
	fmt.Printf("dumped to %s\n", path)
}

// restore loads a SQL script atomically: the whole file applies in one
// transaction, so a script that fails midway leaves the database untouched.
func restore(db *sqldb.Database, path string) {
	if path == "" {
		fmt.Println("usage: .restore <file>")
		return
	}
	src, err := os.ReadFile(path)
	if err != nil {
		printErr(&sqldb.Error{Code: sqldb.ErrIO, Msg: "restore: " + err.Error(), Cause: err})
		return
	}
	if err := db.LoadScript(string(src)); err != nil {
		printErr(err)
		return
	}
	fmt.Printf("restored from %s\n", path)
}

// printErr surfaces the engine's typed error code alongside the message.
func printErr(err error) {
	var se *sqldb.Error
	if errors.As(err, &se) {
		fmt.Printf("error [%s]: %v\n", se.Code, err)
		return
	}
	fmt.Println("error:", err)
}

func printStats(db *sqldb.Database) {
	s := db.Stats()
	fmt.Printf("queries          %d\n", s.Queries)
	fmt.Printf("execs            %d\n", s.Execs)
	fmt.Printf("plan cache       %d hit / %d miss\n", s.PlanCacheHits, s.PlanCacheMisses)
	fmt.Printf("rows scanned     %d\n", s.RowsScanned)
	fmt.Printf("rows emitted     %d\n", s.RowsEmitted)
	fmt.Printf("scans            %d index / %d range / %d full\n", s.IndexScans, s.IndexRangeScans, s.FullScans)
	fmt.Printf("ordered orders   %d\n", s.OrderedIndexOrders)
	fmt.Printf("subplan cache    %d hit / %d miss\n", s.SubplanCacheHits, s.SubplanCacheMisses)
	fmt.Printf("index maintains  %d incremental\n", s.OrdMaintains)
	fmt.Printf("tombstones       %d skipped by scans\n", s.TombstonesSkipped)
	fmt.Printf("transactions     %d begun / %d committed / %d rolled back / %d active\n",
		s.Begins, s.Commits, s.Rollbacks, s.ActiveTxns)
	fmt.Printf("vacuum           %d runs / %d versions reclaimed\n", s.VacuumRuns, s.VersionsReclaimed)
	fmt.Printf("wal              %d appends / %d bytes / %d checkpoints / %d group commits\n",
		s.WALAppends, s.WALBytes, s.Checkpoints, s.WALGroupCommits)
	fmt.Printf("recovery         %d txns replayed / %d torn tails dropped\n", s.RecoveredTxns, s.TornTailsDropped)
	fmt.Printf("segments         %d sealed / %d scans / %d blocks decoded\n",
		s.SegmentsSealed, s.SegmentScans, s.DecodedBlocks)
	fmt.Printf("vectorized       %d batches / %d row fallbacks\n", s.VectorBatches, s.RowFallbacks)
	fmt.Printf("open cursors     %d\n", s.OpenCursors)
}
