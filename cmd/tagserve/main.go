// Command tagserve exposes the embedded engine over the Postgres v3 wire
// protocol, so any Postgres client — psql, a driver, a BI tool — can
// query a TAG database across the network:
//
//	tagserve -addr :5432 -domain movies
//	psql "host=localhost port=5432 dbname=tag user=me"
//
// Flags select the data source (a built-in benchmark domain, a durable
// WAL directory, an init script, or any combination), the listen address,
// an optional cleartext password, and a connection limit. SIGINT/SIGTERM
// trigger a graceful drain: the listener closes, idle sessions get a
// FATAL 57P01 (admin_shutdown), in-flight statements finish, and after
// the drain budget any stragglers are cancelled and their transactions
// rolled back.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tag/internal/server/pgwire"
	"tag/internal/sqldb"
	"tag/internal/tagbench/domains"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5432", "TCP listen address")
	domain := flag.String("domain", "", "built-in benchmark domain to preload (empty for a bare database)")
	dataDir := flag.String("data", "", "durable WAL directory (empty for in-memory)")
	initScript := flag.String("init", "", "SQL script to execute before serving")
	password := flag.String("password", "", "require cleartext password auth with this password")
	maxConns := flag.Int("max-conns", 0, "maximum concurrent connections (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget before forcing sessions out")
	flag.Parse()

	if err := run(*addr, *domain, *dataDir, *initScript, *password, *maxConns, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "tagserve:", err)
		os.Exit(1)
	}
}

func run(addr, domain, dataDir, initScript, password string, maxConns int, drainTimeout time.Duration) error {
	db, err := openDatabase(domain, dataDir)
	if err != nil {
		return err
	}
	defer db.Close()

	if initScript != "" {
		script, err := os.ReadFile(initScript)
		if err != nil {
			return fmt.Errorf("init script: %w", err)
		}
		if err := db.LoadScript(string(script)); err != nil {
			return fmt.Errorf("init script %s: %w", initScript, err)
		}
	}

	srv := pgwire.NewServer(db, pgwire.Options{
		MaxConns: maxConns,
		Password: password,
	})
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("tagserve: listening on %s (domain=%q data=%q max-conns=%d auth=%v)\n",
		lis.Addr(), domain, dataDir, maxConns, password != "")

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("tagserve: %v — draining (%s budget)\n", s, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return <-serveErr
	case err := <-serveErr:
		return err
	}
}

// openDatabase builds the server's database from the -domain and -data
// flags: a preloaded benchmark domain, a durable directory, both (the
// domain seeds an empty directory), or a bare in-memory database.
func openDatabase(domain, dataDir string) (*sqldb.Database, error) {
	if dataDir != "" {
		db, err := sqldb.Open(dataDir, sqldb.WithDurability("", sqldb.DefaultDurabilityOptions()))
		if err != nil {
			return nil, err
		}
		if domain != "" && len(db.TableNames()) == 0 {
			seed, err := domains.Build(domain)
			if err != nil {
				db.Close()
				return nil, err
			}
			var script strings.Builder
			if err := seed.Dump(&script); err != nil {
				seed.Close()
				db.Close()
				return nil, err
			}
			seed.Close()
			if err := db.LoadScript(script.String()); err != nil {
				db.Close()
				return nil, fmt.Errorf("seeding %s from domain %s: %w", dataDir, domain, err)
			}
		}
		return db, nil
	}
	if domain != "" {
		return domains.Build(domain)
	}
	return sqldb.NewDatabase(), nil
}
