package tag

import (
	"context"
	"strings"
	"testing"
)

func TestOpenAllDomains(t *testing.T) {
	for _, d := range Domains() {
		sys, err := Open(d)
		if err != nil {
			t.Fatalf("Open(%s): %v", d, err)
		}
		if len(sys.DB().TableNames()) == 0 {
			t.Errorf("%s: no tables", d)
		}
	}
	if _, err := Open("no_such_domain"); err == nil {
		t.Error("unknown domain must fail")
	}
}

func TestSystemAskPipeline(t *testing.T) {
	sys, err := Open("movies", WithLMUDFs(), WithProfile(OracleProfile()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Ask(context.Background(),
		"Among the movies whose genre is 'Romance', how many of them are considered a 'classic'?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.SQL, "LLM_FILTER('classic movie'") {
		t.Errorf("syn should call the LM UDF:\n%s", resp.SQL)
	}
	if resp.Answer != "[5]" {
		t.Errorf("answer = %s, want [5] (Titanic, Casablanca, Roman Holiday, Ghost, When Harry Met Sally)", resp.Answer)
	}
	if sys.LMSeconds() <= 0 {
		t.Error("LM time should accrue")
	}
}

func TestSystemFrameSemanticOps(t *testing.T) {
	sys, err := Open("movies", WithProfile(OracleProfile()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	df, err := sys.FrameQuery("SELECT title, revenue FROM movies WHERE genre = 'Romance' ORDER BY revenue DESC")
	if err != nil {
		t.Fatal(err)
	}
	classics, err := df.SemFilter(ctx, sys.Model(), "{title} is a movie widely considered a classic")
	if err != nil {
		t.Fatal(err)
	}
	if classics.Len() == 0 || classics.Value(0, "title").AsText() != "Titanic" {
		t.Errorf("highest grossing classic should be Titanic, got %v", classics.Value(0, "title"))
	}
	if _, err := sys.Frame("movies"); err != nil {
		t.Errorf("Frame: %v", err)
	}
	if _, err := sys.Frame("nope"); err == nil {
		t.Error("Frame on missing table must fail")
	}
}

func TestNewWithCustomDatabase(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)")
	db.MustExec("INSERT INTO notes VALUES (1, 'an absolute masterpiece from start to finish')")
	sys := New("notes", db, WithProfile(OracleProfile()))
	df, err := sys.Frame("notes")
	if err != nil {
		t.Fatal(err)
	}
	pos, err := df.SemFilter(context.Background(), sys.Model(), "the following text is positive: {body}")
	if err != nil {
		t.Fatal(err)
	}
	if pos.Len() != 1 {
		t.Errorf("positive notes = %d", pos.Len())
	}
}

func TestBenchmarkQueriesExposed(t *testing.T) {
	qs := BenchmarkQueries()
	if len(qs) != 80 {
		t.Fatalf("queries = %d", len(qs))
	}
}

func TestExplainPipeline(t *testing.T) {
	out, err := ExplainPipeline("RR-01")
	if err != nil || !strings.Contains(out, "sem_topk") {
		t.Errorf("ExplainPipeline: %q err=%v", out, err)
	}
	if _, err := ExplainPipeline("ZZ-99"); err == nil {
		t.Error("unknown query id must fail")
	}
}

func TestRunBenchmarkSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark in -short mode")
	}
	rep, err := RunBenchmark(context.Background(), DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table1(), "Hand-written TAG") {
		t.Error("Table 1 missing TAG row")
	}
}

func TestFigure2Exposed(t *testing.T) {
	fig, err := Figure2(context.Background(), DefaultProfile())
	if err != nil || !strings.Contains(fig, "Sepang") {
		t.Errorf("Figure2: err=%v", err)
	}
}
